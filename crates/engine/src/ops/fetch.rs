//! Index-backed operators: the streaming fetch and the fused keyed-lookup join.
//!
//! Both operators fill their output columns through the store's `fetch_into_columns`
//! ([`bea_storage::Store`]): matched tuples are projected straight from the relation
//! into the batch under construction, without an intermediate row allocation per
//! tuple. Per-key duplicate elimination runs *hash-then-compare* over the freshly
//! appended column range (see [`super::batch::hash_row_at`]) and masks duplicates with
//! a selection vector — no value is cloned to decide freshness.
//!
//! # The probe path's allocation budget
//!
//! Output columns, selection vectors and probe-key scratch are drawn from the
//! worker's [`super::BufferPool`] and recycled on operator teardown, and every
//! allocation event the probe path *demands* (pool hit or not) is counted in
//! [`crate::stats::AccessStats::allocs_per_probe`]: one per source row gathered into
//! a fetch's key set, and `positions + 2` per keyed-lookup cache miss. A cache hit
//! counts — and performs — none: the steady-state anchored probe (single key, warm
//! cache, fused projection) emits the pre-projected cached batch by pure refcount
//! bumps, which is what makes `allocs_per_probe == 0` assertable for the serving
//! loop.
//!
//! # Shard routing
//!
//! A per-shard branch of a sharded lowering carries a
//! [`bea_core::plan::ShardRoute`]: the operator then processes exactly the probe keys
//! the routing hash ([`bea_storage::shard_of`]) assigns to its shard, and skips the
//! rest. Ownership is decided by hashing the key columns *in place* — a skipped row
//! clones nothing — so across all branches every key is gathered exactly once and the
//! copy traffic (`values_cloned`) is invariant under the shard count. The `K` branches
//! of one sharded fetch are one logical fetch operation: only the shard-0 branch
//! reports `fetch_ops`, keeping every counter of
//! [`crate::stats::AccessStats::same_data_access`] shard-count-invariant. Batches a
//! branch emits are tagged with their origin shard ([`Batch::origin_shard`]).

use super::batch::{hash_row_at, passes_pair, rows_equal_at, Batch};
use super::morsel::{CacheProbe, SharedLookupCache};
use super::{BoxOp, Operator, SharedState, BATCH_SIZE};
use crate::cache::{CacheShape, CacheSpace, SessionFetchCache, SessionProbe};
use bea_core::error::Result;
use bea_core::plan::{Predicate, ShardRoute};
use bea_core::value::{Row, Value};
use bea_storage::{shard_of, Store};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// A handle to the session's cross-query fetch cache, resolved to the operator's
/// [`CacheShape`] space once, off the per-probe path. `None` outside sessions (and
/// in cache-disabled sessions), where the historical probe paths run untouched.
type SessionCache = Option<(Arc<SessionFetchCache>, Arc<CacheSpace>)>;

/// RAII resolution of a session-cache fill claim: publishes the batch when one was
/// produced, withdraws the claim otherwise — on error *or* unwind — so probes
/// waiting in other queries are never stranded by this query's failure.
struct SessionClaim<'a> {
    cache: &'a SessionFetchCache,
    space: &'a CacheSpace,
    key: &'a Row,
    publish: Option<Arc<Batch>>,
}

impl Drop for SessionClaim<'_> {
    fn drop(&mut self) {
        match self.publish.take() {
            Some(batch) => self.cache.complete(self.space, self.key, batch),
            None => self.cache.abort(self.space, self.key),
        }
    }
}

/// Append a session-cached posting batch into a fetch's shared gather (`cols` +
/// `selection`) — the cache-hit analogue of [`fetch_key_into`]. The cached batch is
/// already per-key deduplicated, so every logical row is appended fresh, in the
/// exact order the store fetch would have produced it.
fn append_cached_postings(batch: &Batch, cols: &mut [Vec<Value>], selection: &mut Vec<u32>) {
    if cols.is_empty() {
        // Zero-column projection: mirrors the kernel's special case — a nonempty
        // posting list contributes exactly one empty row.
        if !batch.is_empty() {
            selection.push(selection.len() as u32);
        }
        return;
    }
    for j in 0..batch.len() {
        selection.push(cols[0].len() as u32);
        batch.append_row_to(j, cols);
    }
}

/// Does this operator's shard branch own `batch`'s row `i`? Routing hashes the key
/// columns in place — deciding ownership never clones a value. Route-free operators
/// own every row.
fn owns_row(batch: &Batch, i: usize, key_cols: &[usize], route: Option<ShardRoute>) -> bool {
    match route {
        None => true,
        Some(r) => shard_of(key_cols.iter().map(|&c| batch.value(i, c)), r.of) == r.shard,
    }
}

/// Append every tuple matching `key` into `cols` (projected at `positions`) and extend
/// `selection` with the physical indices of the *fresh* projections within this key's
/// range — the shared fetch kernel of [`FetchOp`] and [`KeyedLookupOp`]. Returns the
/// number of tuples read (for access accounting) and the index-partition shard that
/// served them. Distinct keys cannot produce equal projections as long as the key
/// attributes survive in `positions` (lowering adds a global dedup when a pushed-down
/// projection dropped them), so per-key dedup suffices.
#[allow(clippy::too_many_arguments)]
fn fetch_key_into(
    store: Store<'_>,
    constraint_index: usize,
    key: &[Value],
    positions: &[usize],
    cols: &mut [Vec<Value>],
    selection: &mut Vec<u32>,
    dedup: &mut HashMap<u64, Vec<u32>>,
) -> Result<(u64, u32)> {
    let (appended, shard) = store.fetch_into_columns(constraint_index, key, positions, cols)?;
    if cols.is_empty() {
        // Zero-column projection: every matched tuple projects to the empty row, so a
        // nonempty posting list contributes exactly one fresh row. With no columns the
        // batch's physical length is the selection length itself.
        if appended > 0 {
            selection.push(selection.len() as u32);
        }
        return Ok((appended, shard));
    }
    let base = cols[0].len() - appended as usize;
    dedup.clear();
    for idx in base..base + appended as usize {
        let hash = hash_row_at(cols, idx);
        let candidates = dedup.entry(hash).or_default();
        if candidates
            .iter()
            .any(|&c| rows_equal_at(cols, c as usize, idx))
        {
            continue;
        }
        candidates.push(idx as u32);
        selection.push(idx as u32);
    }
    Ok((appended, shard))
}

/// Streaming `fetch(X ∈ source, R, …)`: drain the source, deduplicate the key
/// projections, then emit the `positions`-projection of every tuple each key matches,
/// one key at a time, straight off the index postings into output columns.
///
/// Only the key set is durable state (released on exhaustion, or on drop if a consumer
/// short-circuits); fetched tuples flow through without ever being collected per fetch.
pub(crate) struct FetchOp<'db> {
    input: Option<BoxOp<'db>>,
    key_cols: Vec<usize>,
    relation: String,
    positions: Vec<usize>,
    constraint_index: usize,
    route: Option<ShardRoute>,
    store: Store<'db>,
    state: SharedState,
    /// The session's cross-query cache, probed per key before the index partition.
    /// The streaming fetch is a *consumer only* — it gathers many keys into one
    /// shared buffer and cannot produce the standalone per-key batch a fill claim
    /// would owe, so misses fetch from the store exactly as without a cache.
    session: SessionCache,
    keys: std::collections::btree_set::IntoIter<Row>,
    num_keys: u64,
    /// Per-key dedup scratch, reused across batches (cleared per key by the kernel).
    dedup: HashMap<u64, Vec<u32>>,
    /// Chunks of an oversized gather round not yet emitted. A single key can match far
    /// more than `BATCH_SIZE` tuples; the round is then emitted as several batches
    /// sharing the one dense gather (selection slices only — zero value copies), so
    /// downstream consumers that reason in batches (morsel splitting above all) see
    /// cuttable boundaries instead of one monolithic batch.
    pending: VecDeque<Batch>,
    done: bool,
}

impl<'db> FetchOp<'db> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        input: BoxOp<'db>,
        key_cols: Vec<usize>,
        relation: String,
        positions: Vec<usize>,
        constraint_index: usize,
        route: Option<ShardRoute>,
        store: Store<'db>,
        state: SharedState,
    ) -> Self {
        let session = state.borrow().cache.clone().map(|cache| {
            let space = cache.space(CacheShape {
                constraint: constraint_index,
                positions: positions.clone(),
                emit: None,
            });
            (cache, space)
        });
        Self {
            input: Some(input),
            key_cols,
            relation,
            positions,
            constraint_index,
            route,
            store,
            state,
            session,
            keys: BTreeSet::new().into_iter(),
            num_keys: 0,
            dedup: HashMap::new(),
            pending: VecDeque::new(),
            done: false,
        }
    }
}

impl Operator for FetchOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        #[cfg(test)]
        if self.relation == super::PANIC_RELATION {
            panic!("injected operator panic");
        }
        if let Some(mut input) = self.input.take() {
            // Distinct keys only: fetching the same key twice reads the same data.
            let mut keys: BTreeSet<Row> = BTreeSet::new();
            let mut key_values = 0u64;
            let mut key_allocs = 0u64;
            while let Some(batch) = input.next_batch()? {
                // Every candidate key projection this branch owns is physically
                // gathered (the set discards duplicates after the fact), so every one
                // counts — as a clone per key column and as one key-row allocation.
                // Rows routed to other shards are skipped by an in-place hash
                // — no clone — so the branches together gather each row exactly once.
                for i in 0..batch.len() {
                    if !owns_row(&batch, i, &self.key_cols, self.route) {
                        continue;
                    }
                    key_values += self.key_cols.len() as u64;
                    key_allocs += 1;
                    keys.insert(batch.gather(i, &self.key_cols));
                }
            }
            self.num_keys = keys.len() as u64;
            let mut state = self.state.borrow_mut();
            state.stats.values_cloned += key_values;
            state.stats.allocs_per_probe += key_allocs;
            state.acquire(self.num_keys);
            self.keys = keys.into_iter();
        }
        if let Some(chunk) = self.pending.pop_front() {
            return Ok(Some(chunk));
        }
        if self.done {
            return Ok(None);
        }
        let (mut cols, mut selection) = {
            let mut state = self.state.borrow_mut();
            let cols: Vec<Vec<Value>> = (0..self.positions.len())
                .map(|_| state.pool.get_values())
                .collect();
            (cols, state.pool.get_indices())
        };
        while selection.len() < BATCH_SIZE {
            let Some(key) = self.keys.next() else {
                self.done = true;
                let mut state = self.state.borrow_mut();
                // The K branches of one sharded fetch are one logical fetch
                // operation; the shard-0 branch reports it for all of them.
                if self.route.is_none_or(|r| r.shard == 0) {
                    state.stats.fetch_ops += 1;
                }
                state.release(self.num_keys);
                self.num_keys = 0;
                break;
            };
            if let Some((cache, space)) = &self.session {
                if let Some(batch) = cache.lookup(space, &key) {
                    // Hot-tier hit: the postings are served by appending the cached
                    // batch — physical clones (counted) but no index lookup and no
                    // store fetch, so none of the fetch-side counters move.
                    append_cached_postings(&batch, &mut cols, &mut selection);
                    let mut state = self.state.borrow_mut();
                    state.stats.cache_hits += 1;
                    state.stats.rows_served_from_cache += batch.len() as u64;
                    state.stats.values_cloned += batch.len() as u64 * self.positions.len() as u64;
                    continue;
                }
            }
            let mut state = self.state.borrow_mut();
            state.stats.index_lookups += 1;
            drop(state);
            let (fetched, shard) = fetch_key_into(
                self.store,
                self.constraint_index,
                &key,
                &self.positions,
                &mut cols,
                &mut selection,
                &mut self.dedup,
            )?;
            let mut state = self.state.borrow_mut();
            state
                .stats
                .record_fetched_sharded(&self.relation, shard, fetched);
            state.stats.values_cloned += fetched * self.positions.len() as u64;
        }
        if selection.is_empty() && self.done {
            // Nothing was emitted: the pooled buffers go straight back.
            let mut state = self.state.borrow_mut();
            for col in cols {
                state.pool.put_values(col);
            }
            state.pool.put_indices(selection);
            Ok(None)
        } else {
            let stored = cols.first().map_or(selection.len(), Vec::len);
            let batch =
                Batch::from_dense(cols, stored).with_origin_shard(self.route.map(|r| r.shard));
            if selection.len() <= BATCH_SIZE {
                return Ok(Some(batch.keep_physical(selection)));
            }
            // Oversized round (one key matched more than a batch's worth): emit it as
            // `BATCH_SIZE`-row slices of the shared gather, in order. Identical rows,
            // identical counters — only the batch boundaries move.
            let mut chunks = selection.chunks(BATCH_SIZE).map(<[u32]>::to_vec);
            let first = batch.clone().keep_physical(chunks.next().unwrap());
            self.pending
                .extend(chunks.map(|chunk| batch.clone().keep_physical(chunk)));
            self.state.borrow_mut().pool.put_indices(selection);
            Ok(Some(first))
        }
    }
}

impl Drop for FetchOp<'_> {
    fn drop(&mut self) {
        // Dropped mid-stream (short-circuiting consumer or error): the key set is
        // still durable — release it so residency returns to zero.
        if self.num_keys > 0 {
            self.state.borrow_mut().release(self.num_keys);
            self.num_keys = 0;
        }
    }
}

/// The fused `σ[key equalities](source × fetch(X ∈ source, R, …))`: an index
/// nested-loop join. Streams the source; for each row, probes the index with the row's
/// key (once per distinct key — results are cached so the data access is identical to a
/// standalone fetch over the deduplicated key set), gathers the concatenation with
/// every match into output columns, and applies the residual predicates.
///
/// Durable state is the per-key cache of projected postings — `Arc<Batch>` values
/// probed with a reusable key scratch, so a cache hit costs a single hash and a
/// refcount bump: no allocation, no clone. Only a miss builds buffers (drawn from the
/// worker's pool, counted in `allocs_per_probe`), and when the projection is fused
/// and residual-free the miss stores the batch *pre-projected*, so hits have nothing
/// left to permute. The cache is bounded by the fetch's access-schema bound times the
/// number of distinct keys; it is drained back into the buffer pool on exhaustion
/// (released on drop if a consumer short-circuits). Neither the cross product nor the
/// fetched table is ever materialized.
///
/// On a morsel of a split pipeline ([`KeyedLookupOp::for_morsel`]) the local cache is
/// replaced by the split's [`SharedLookupCache`]: a key any morsel filled is a warm
/// hit for every other, so the split fetches each distinct key exactly once — fills
/// charge the identical miss costs, and the shared rows are released by the scheduler
/// when the split's last morsel finalizes instead of at operator exhaustion.
pub(crate) struct KeyedLookupOp<'db> {
    input: BoxOp<'db>,
    key_cols: Vec<usize>,
    relation: String,
    positions: Vec<usize>,
    constraint_index: usize,
    residual: Vec<Predicate>,
    /// Which columns of the *combined* row (source columns, then fetched positions) to
    /// emit. `None` emits all of them; `Some` is a projection fused in — either by the
    /// operator-tree builder from a directly consuming `Project` step, or by the
    /// sharded lowering's fan-out (`PhysOp::KeyedLookup::emit`) — so values a
    /// downstream projection would discard are never gathered in the first place.
    out_cols: Option<Vec<usize>>,
    /// `Some` on a per-shard branch: only source rows whose key routes to this shard
    /// are probed; the rest are skipped without cloning anything.
    route: Option<ShardRoute>,
    store: Store<'db>,
    state: SharedState,
    cache: HashMap<Row, Arc<Batch>>,
    cached_rows: u64,
    /// The split's shared cache when this instance serves one morsel of a split
    /// pipeline; `None` runs the private cache above.
    shared: Option<Arc<SharedLookupCache>>,
    /// The session's cross-query cache, probed before both per-query tiers. Resolved
    /// together with [`KeyedLookupOp::fused_emit`] — the fused pre-projection is part
    /// of the entry shape — by [`KeyedLookupOp::ensure_fused_emit`].
    session: SessionCache,
    /// Whether this instance reports the once-per-pipeline `fetch_ops` on
    /// exhaustion. Only a split's first morsel does — the split is one logical fetch
    /// operation, composing with the shard-0 convention for sharded branches.
    report_fetch_ops: bool,
    /// Reusable probe-key buffer: every probe gathers into it (no allocation once
    /// grown); a miss *moves* it into the cache as the owned key and lets the next
    /// gather regrow it — which is the one key allocation a miss is charged for.
    key_scratch: Row,
    /// Per-key dedup scratch, reused across misses (cleared per key by the kernel).
    dedup: HashMap<u64, Vec<u32>>,
    /// `Some(mapped)` when cache entries are stored pre-projected: no residual
    /// predicates and a fused projection keeping only fetched columns, `mapped` being
    /// those columns rebased to the fetch result. Decided once — input arity is fixed
    /// by the plan — by [`KeyedLookupOp::ensure_fused_emit`].
    fused_emit: Option<Vec<usize>>,
    fused_checked: bool,
    done: bool,
}

impl<'db> KeyedLookupOp<'db> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        input: BoxOp<'db>,
        key_cols: Vec<usize>,
        relation: String,
        positions: Vec<usize>,
        constraint_index: usize,
        residual: Vec<Predicate>,
        out_cols: Option<Vec<usize>>,
        route: Option<ShardRoute>,
        store: Store<'db>,
        state: SharedState,
    ) -> Self {
        Self {
            input,
            key_cols,
            relation,
            positions,
            constraint_index,
            residual,
            out_cols,
            route,
            store,
            state,
            cache: HashMap::new(),
            cached_rows: 0,
            shared: None,
            session: None,
            report_fetch_ops: true,
            key_scratch: Row::new(),
            dedup: HashMap::new(),
            fused_emit: None,
            fused_checked: false,
            done: false,
        }
    }

    /// Configure this instance to serve one morsel of a split pipeline: probe the
    /// split's shared cache (when the builder registered one for this step), and
    /// report once-per-pipeline counters only on the first morsel.
    pub(crate) fn for_morsel(
        mut self,
        shared: Option<Arc<SharedLookupCache>>,
        report_fetch_ops: bool,
    ) -> Self {
        self.shared = shared;
        self.report_fetch_ops = report_fetch_ops;
        self
    }
}

impl KeyedLookupOp<'_> {
    /// Decide once whether cache entries can be stored pre-projected; see
    /// [`KeyedLookupOp::fused_emit`]. Input arity is plan-fixed, so the first batch
    /// settles it for the operator's lifetime.
    fn ensure_fused_emit(&mut self, left_arity: usize) {
        if self.fused_checked {
            return;
        }
        self.fused_checked = true;
        if self.residual.is_empty() {
            if let Some(cols) = &self.out_cols {
                if cols.iter().all(|&c| c >= left_arity) {
                    self.fused_emit = Some(cols.iter().map(|&c| c - left_arity).collect());
                }
            }
        }
        // The fused pre-projection is baked into cached batches, so it is part of
        // the session-cache entry shape — resolve the operator's space only now
        // that it is settled.
        let cache = self.state.borrow().cache.clone();
        if let Some(cache) = cache {
            let space = cache.space(CacheShape {
                constraint: self.constraint_index,
                positions: self.positions.clone(),
                emit: self.fused_emit.clone(),
            });
            self.session = Some((cache, space));
        }
    }

    /// The (projected, per-key deduplicated) fetch result for the key currently in
    /// `key_scratch`, from the cache when present. A hit is one hash over the scratch
    /// and a refcount bump — no allocation of any kind, which is the steady state the
    /// anchored serving loop relies on. Only a miss builds fresh buffers (drawn from
    /// the worker's pool) and is charged `positions + 2` in `allocs_per_probe`: the
    /// key row, one buffer per fetched position, and the selection vector.
    fn lookup(&mut self) -> Result<Arc<Batch>> {
        let Some((cache, space)) = self.session.clone() else {
            return self.lookup_uncached();
        };
        // The session tier is probed before both per-query tiers: a hit filled by
        // any earlier query (or any concurrent worker) costs one hash and a
        // refcount bump and charges only the cache counters. A miss claims the key
        // session-wide and runs the per-query path unchanged — charging exactly the
        // uncached miss costs — then publishes its batch for every later probe.
        match cache.probe(&space, &self.key_scratch) {
            SessionProbe::Hit(batch) => {
                let mut state = self.state.borrow_mut();
                state.stats.cache_hits += 1;
                state.stats.rows_served_from_cache += batch.len() as u64;
                Ok(batch)
            }
            SessionProbe::Fill => {
                // The uncached path may move the scratch into the private cache;
                // snapshot the key (refcount bumps, uncounted like the claim's own
                // map key) so the claim can be resolved afterwards.
                let key = self.key_scratch.clone();
                let mut claim = SessionClaim {
                    cache: &cache,
                    space: &space,
                    key: &key,
                    publish: None,
                };
                let filled = self.lookup_uncached();
                if let Ok(batch) = &filled {
                    claim.publish = Some(Arc::clone(batch));
                }
                filled
            }
        }
    }

    /// The per-query lookup tiers (the split's shared cache in morsel mode, the
    /// private per-key cache otherwise), exactly as they run without a session
    /// cache.
    fn lookup_uncached(&mut self) -> Result<Arc<Batch>> {
        if let Some(shared) = self.shared.clone() {
            // Morsel mode: the split's shared cache replaces the private one. A probe
            // that wins the fill claim performs — and is charged — exactly the local
            // miss below; every other morsel then hits warm. The scratch is lent out
            // and restored, so the hit path's no-allocation property is unchanged.
            return match shared.probe(&self.key_scratch) {
                CacheProbe::Hit(batch) => Ok(batch),
                CacheProbe::Fill => {
                    let key: Row = std::mem::take(&mut self.key_scratch);
                    let filled = self.fill(&key);
                    self.key_scratch = key;
                    match filled {
                        Ok(cached) => {
                            let cached = Arc::new(cached);
                            shared.complete(&self.key_scratch, Arc::clone(&cached));
                            Ok(cached)
                        }
                        Err(error) => {
                            shared.abort(&self.key_scratch);
                            Err(error)
                        }
                    }
                }
            };
        }
        if let Some(hit) = self.cache.get(&self.key_scratch) {
            return Ok(hit.clone());
        }
        // Move the scratch in as the owned cache key — no value is re-cloned; the
        // next probe's gather regrows the scratch, which is the key allocation this
        // miss is charged for.
        let key: Row = std::mem::take(&mut self.key_scratch);
        let cached = self.fill(&key)?;
        self.cached_rows += cached.len() as u64;
        let cached = Arc::new(cached);
        self.cache.insert(key, Arc::clone(&cached));
        Ok(cached)
    }

    /// The miss body shared by the private and morsel cache paths: fetch, project and
    /// per-key-dedup the postings for `key`, charging the miss costs —
    /// `index_lookups`, `allocs_per_probe` (`positions + 2`), the fetch accounting,
    /// and the residency acquire for the rows the cache will hold.
    fn fill(&mut self, key: &Row) -> Result<Batch> {
        let (mut cols, mut selection) = {
            let mut state = self.state.borrow_mut();
            state.stats.index_lookups += 1;
            state.stats.allocs_per_probe += self.positions.len() as u64 + 2;
            let cols: Vec<Vec<Value>> = (0..self.positions.len())
                .map(|_| state.pool.get_values())
                .collect();
            (cols, state.pool.get_indices())
        };
        let (fetched, shard) = fetch_key_into(
            self.store,
            self.constraint_index,
            key,
            &self.positions,
            &mut cols,
            &mut selection,
            &mut self.dedup,
        )?;
        let stored = cols.first().map_or(selection.len(), Vec::len);
        let mut cached = Batch::from_dense(cols, stored).keep_physical(selection);
        if let Some(mapped) = &self.fused_emit {
            // Store the batch pre-projected: every hit then emits the cached batch
            // itself, with nothing left to permute per probe.
            cached = cached.project(mapped);
        }
        let mut state = self.state.borrow_mut();
        state
            .stats
            .record_fetched_sharded(&self.relation, shard, fetched);
        state.stats.values_cloned += fetched * self.positions.len() as u64;
        state.acquire(cached.len() as u64);
        Ok(cached)
    }
}

impl Operator for KeyedLookupOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let Some(batch) = self.input.next_batch()? else {
            self.done = true;
            let mut state = self.state.borrow_mut();
            // As for `FetchOp`: a sharded lookup's branches are one logical fetch
            // operation, reported once by the shard-0 branch — and a split
            // pipeline's morsels likewise, reported once by the first morsel.
            if self.report_fetch_ops && self.route.is_none_or(|r| r.shard == 0) {
                state.stats.fetch_ops += 1;
            }
            state.release(self.cached_rows);
            self.cached_rows = 0;
            // Drain the private cache through the buffer pool: uniquely-owned key
            // rows and batch buffers come back cleared for the next probe loop;
            // anything a downstream consumer still shares stays with that consumer.
            // (In morsel mode the private cache is empty — the shared cache outlives
            // this instance and is released at split finalize.)
            for (key, cached) in self.cache.drain() {
                state.pool.put_values(key);
                if let Ok(batch) = Arc::try_unwrap(cached) {
                    batch.recycle_into(&mut state.pool);
                }
            }
            state.pool.put_values(std::mem::take(&mut self.key_scratch));
            return Ok(None);
        };
        let left_arity = batch.arity();
        let origin = self.route.map(|r| r.shard);
        self.ensure_fused_emit(left_arity);
        // Anchor fast path: a single source row (owned by this branch), no residual,
        // and a fused projection that keeps only fetched columns — the output *is*
        // the pre-projected cached batch, emitted by refcount bumps with zero value
        // clones and, on a warm cache, zero allocations. This is the first lookup of
        // every anchored plan, where the fan-out (and hence the row-pipeline's copy
        // bill) is largest — and the whole body of the steady-state serving loop.
        if batch.len() == 1
            && self.fused_emit.is_some()
            && owns_row(&batch, 0, &self.key_cols, self.route)
        {
            batch.gather_into(0, &self.key_cols, &mut self.key_scratch);
            self.state.borrow_mut().stats.values_cloned += self.key_cols.len() as u64;
            let fetched = self.lookup()?;
            return Ok(Some((*fetched).clone().with_origin_shard(origin)));
        }
        let out_arity = self
            .out_cols
            .as_ref()
            .map_or(left_arity + self.positions.len(), Vec::len);
        let mut out: Vec<Vec<Value>> = {
            let mut state = self.state.borrow_mut();
            (0..out_arity).map(|_| state.pool.get_values()).collect()
        };
        let mut out_rows = 0usize;
        let mut probed_rows = 0u64;
        for i in 0..batch.len() {
            // Rows routed to other shards are skipped by an in-place hash — nothing
            // cloned — so each source row is probe-gathered on exactly one branch.
            if !owns_row(&batch, i, &self.key_cols, self.route) {
                continue;
            }
            probed_rows += 1;
            batch.gather_into(i, &self.key_cols, &mut self.key_scratch);
            let fetched = self.lookup()?;
            if self.fused_emit.is_some() {
                // Cache entries are pre-projected (and there is no residual): the
                // emission is a straight per-row append of the cached columns.
                for j in 0..fetched.len() {
                    fetched.append_row_to(j, &mut out);
                    out_rows += 1;
                }
                continue;
            }
            for j in 0..fetched.len() {
                if !passes_pair(&batch, i, &fetched, j, &self.residual) {
                    continue;
                }
                match &self.out_cols {
                    None => {
                        let (left_cols, right_cols) = out.split_at_mut(left_arity);
                        batch.append_row_to(i, left_cols);
                        fetched.append_row_to(j, right_cols);
                    }
                    Some(cols) => {
                        for (sink, &c) in out.iter_mut().zip(cols) {
                            let value = if c < left_arity {
                                batch.value(i, c)
                            } else {
                                fetched.value(j, c - left_arity)
                            };
                            sink.push(value.clone());
                        }
                    }
                }
                out_rows += 1;
            }
        }
        // One probe-key gather per owned source row, hit or miss.
        self.state.borrow_mut().stats.values_cloned +=
            probed_rows * self.key_cols.len() as u64 + (out_rows * out_arity) as u64;
        Ok(Some(
            Batch::from_dense(out, out_rows).with_origin_shard(origin),
        ))
    }
}

impl Drop for KeyedLookupOp<'_> {
    fn drop(&mut self) {
        if self.cached_rows > 0 {
            self.state.borrow_mut().release(self.cached_rows);
            self.cached_rows = 0;
        }
    }
}

//! Index-backed operators: the streaming fetch and the fused keyed-lookup join.

use super::{passes, BoxOp, Operator, SharedState, BATCH_SIZE};
use bea_core::error::Result;
use bea_core::plan::Predicate;
use bea_core::value::Row;
use bea_storage::IndexedDatabase;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Streaming `fetch(X ∈ source, R, …)`: drain the source, deduplicate the key
/// projections, then emit the `positions`-projection of every tuple each key matches,
/// one key at a time, straight off the index postings
/// ([`IndexedDatabase::fetch_iter`] — no intermediate `Vec<&Row>`).
///
/// Only the key set is durable state (released on exhaustion, or on drop if a consumer
/// short-circuits); fetched tuples flow through without ever being collected per fetch.
pub(crate) struct FetchOp<'db> {
    input: Option<BoxOp<'db>>,
    key_cols: Vec<usize>,
    relation: String,
    positions: Vec<usize>,
    constraint_index: usize,
    database: &'db IndexedDatabase,
    state: SharedState,
    keys: std::collections::btree_set::IntoIter<Row>,
    num_keys: u64,
    done: bool,
}

impl<'db> FetchOp<'db> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        input: BoxOp<'db>,
        key_cols: Vec<usize>,
        relation: String,
        positions: Vec<usize>,
        constraint_index: usize,
        database: &'db IndexedDatabase,
        state: SharedState,
    ) -> Self {
        Self {
            input: Some(input),
            key_cols,
            relation,
            positions,
            constraint_index,
            database,
            state,
            keys: BTreeSet::new().into_iter(),
            num_keys: 0,
            done: false,
        }
    }
}

impl Operator for FetchOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if let Some(mut input) = self.input.take() {
            // Distinct keys only: fetching the same key twice reads the same data.
            let mut keys: BTreeSet<Row> = BTreeSet::new();
            while let Some(batch) = input.next_batch()? {
                for row in batch {
                    keys.insert(self.key_cols.iter().map(|&c| row[c].clone()).collect());
                }
            }
            self.num_keys = keys.len() as u64;
            self.state.borrow_mut().acquire(self.num_keys);
            self.keys = keys.into_iter();
        }
        if self.done {
            return Ok(None);
        }
        let mut out: Vec<Row> = Vec::new();
        let mut seen: BTreeSet<Row> = BTreeSet::new();
        while out.len() < BATCH_SIZE {
            let Some(key) = self.keys.next() else {
                self.done = true;
                let mut state = self.state.borrow_mut();
                state.stats.fetch_ops += 1;
                state.release(self.num_keys);
                self.num_keys = 0;
                break;
            };
            {
                let mut state = self.state.borrow_mut();
                state.stats.index_lookups += 1;
                let postings = self.database.fetch_iter(self.constraint_index, &key)?;
                state
                    .stats
                    .record_fetched(&self.relation, postings.len() as u64);
                // Per-key dedup: distinct keys cannot collide as long as the key
                // attributes survive in `positions` (lowering adds a global dedup when a
                // pushed-down projection dropped them).
                seen.clear();
                for tuple in postings {
                    let row: Row = self.positions.iter().map(|&p| tuple[p].clone()).collect();
                    if seen.insert(row.clone()) {
                        out.push(row);
                    }
                }
            }
        }
        if out.is_empty() && self.done {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

impl Drop for FetchOp<'_> {
    fn drop(&mut self) {
        // Dropped mid-stream (short-circuiting consumer or error): the key set is
        // still durable — release it so residency returns to zero.
        if self.num_keys > 0 {
            self.state.borrow_mut().release(self.num_keys);
            self.num_keys = 0;
        }
    }
}

/// The fused `σ[key equalities](source × fetch(X ∈ source, R, …))`: an index
/// nested-loop join. Streams the source; for each row, probes the index with the row's
/// key (once per distinct key — results are cached so the data access is identical to a
/// standalone fetch over the deduplicated key set), emits the concatenation with every
/// match, and applies the residual predicates.
///
/// Durable state is the per-key cache of projected postings, bounded by the fetch's
/// access-schema bound times the number of distinct keys; it is released on exhaustion
/// (or on drop if a consumer short-circuits). Neither the cross product nor the fetched
/// table is ever materialized.
pub(crate) struct KeyedLookupOp<'db> {
    input: BoxOp<'db>,
    key_cols: Vec<usize>,
    relation: String,
    positions: Vec<usize>,
    constraint_index: usize,
    residual: Vec<Predicate>,
    database: &'db IndexedDatabase,
    state: SharedState,
    cache: HashMap<Row, Rc<Vec<Row>>>,
    cached_rows: u64,
    done: bool,
}

impl<'db> KeyedLookupOp<'db> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        input: BoxOp<'db>,
        key_cols: Vec<usize>,
        relation: String,
        positions: Vec<usize>,
        constraint_index: usize,
        residual: Vec<Predicate>,
        database: &'db IndexedDatabase,
        state: SharedState,
    ) -> Self {
        Self {
            input,
            key_cols,
            relation,
            positions,
            constraint_index,
            residual,
            database,
            state,
            cache: HashMap::new(),
            cached_rows: 0,
            done: false,
        }
    }
}

impl Operator for KeyedLookupOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        let Some(batch) = self.input.next_batch()? else {
            self.done = true;
            let mut state = self.state.borrow_mut();
            state.stats.fetch_ops += 1;
            state.release(self.cached_rows);
            self.cached_rows = 0;
            self.cache.clear();
            return Ok(None);
        };
        let mut out: Vec<Row> = Vec::new();
        for lrow in batch {
            let key: Row = self.key_cols.iter().map(|&c| lrow[c].clone()).collect();
            let fetched = match self.cache.get(&key) {
                Some(rows) => rows.clone(),
                None => {
                    let mut state = self.state.borrow_mut();
                    state.stats.index_lookups += 1;
                    let postings = self.database.fetch_iter(self.constraint_index, &key)?;
                    state
                        .stats
                        .record_fetched(&self.relation, postings.len() as u64);
                    let mut seen: BTreeSet<Row> = BTreeSet::new();
                    let mut rows: Vec<Row> = Vec::new();
                    for tuple in postings {
                        let row: Row = self.positions.iter().map(|&p| tuple[p].clone()).collect();
                        if seen.insert(row.clone()) {
                            rows.push(row);
                        }
                    }
                    state.acquire(rows.len() as u64);
                    self.cached_rows += rows.len() as u64;
                    let rows = Rc::new(rows);
                    self.cache.insert(key, rows.clone());
                    rows
                }
            };
            for rrow in fetched.iter() {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                if passes(&row, &self.residual) {
                    out.push(row);
                }
            }
        }
        Ok(Some(out))
    }
}

impl Drop for KeyedLookupOp<'_> {
    fn drop(&mut self) {
        if self.cached_rows > 0 {
            self.state.borrow_mut().release(self.cached_rows);
            self.cached_rows = 0;
        }
    }
}

//! The columnar batch: how rows move between streaming operators.
//!
//! A [`Batch`] stores its values column-wise, each column behind an [`Arc`], plus an
//! optional *selection vector* naming the physical rows that are logically present.
//! The layout makes the hot relational operators manipulate *metadata* instead of
//! values:
//!
//! * **filter** keeps the columns untouched and writes a (possibly composed) selection
//!   vector — zero value copies;
//! * **project** permutes/duplicates the column handles — zero value copies;
//! * **exchange** (crossing a materialization point between pipelines) clones the
//!   batch, which clones `Arc`s — a refcount bump per column, never a row copy.
//!
//! Only *gathers* — operators that genuinely combine rows from several sources (joins,
//! products, fetch output) — write values into fresh columns, and a value write is O(1)
//! even for strings ([`bea_core::value::Value`] payloads are shared). The executor
//! counts every such clone in [`crate::stats::AccessStats::values_cloned`], so the copy
//! traffic of a plan is asserted, not eyeballed.
//!
//! The batch length is tracked explicitly (`stored`), so zero-column batches — unit
//! rows, as produced by `PhysOp::Unit` — still have a well-defined row count.

use bea_core::plan::Predicate;
use bea_core::value::{Row, Value};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One shared column of values. Cloning the handle is a refcount bump.
pub(crate) type Column = Arc<Vec<Value>>;

/// A columnar batch of rows; see the module docs for the layout.
///
/// The column list itself is behind an `Arc` too, so `Batch::clone` — the exchange
/// protocol between pipelines, and a keyed-lookup cache hit — is purely refcount
/// bumps: no allocation anywhere on the clone path.
#[derive(Debug, Clone, Default)]
pub(crate) struct Batch {
    columns: Arc<Vec<Column>>,
    /// Physical rows stored in every column (the columns all have this length).
    stored: usize,
    /// Logical row `i` lives at physical position `selection[i]`; `None` = identity.
    selection: Option<Arc<Vec<u32>>>,
    /// The index-partition shard every row of this batch was fetched from, when the
    /// batch was produced by one per-shard fetch branch (`None` otherwise). Metadata
    /// only — it survives filters, projections and exchanges, and is the hook for
    /// routing a batch to the worker nearest its partition (shard-aware placement).
    origin_shard: Option<u32>,
}

impl Batch {
    /// A batch over freshly built dense columns. `stored` is passed explicitly so
    /// zero-column (unit-row) batches keep their row count.
    pub(crate) fn from_dense(columns: Vec<Vec<Value>>, stored: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == stored));
        Self {
            columns: Arc::new(columns.into_iter().map(Arc::new).collect()),
            stored,
            selection: None,
            origin_shard: None,
        }
    }

    /// A batch holding exactly one row, taking ownership of its values (no clones).
    pub(crate) fn singleton(row: Row) -> Self {
        let columns = Arc::new(row.into_iter().map(|v| Arc::new(vec![v])).collect());
        Self {
            columns,
            stored: 1,
            selection: None,
            origin_shard: None,
        }
    }

    /// Tag the batch with the shard its rows were fetched from (builder style).
    pub(crate) fn with_origin_shard(mut self, origin_shard: Option<u32>) -> Self {
        self.origin_shard = origin_shard;
        self
    }

    /// The shard every row of this batch was fetched from, if it was produced by a
    /// single per-shard fetch branch.
    #[allow(dead_code)] // the hook for shard-aware batch placement; exercised by tests
    pub(crate) fn origin_shard(&self) -> Option<u32> {
        self.origin_shard
    }

    /// Transpose owned rows of the given arity into a dense batch (moves the values).
    pub(crate) fn from_rows(arity: usize, rows: Vec<Row>) -> Self {
        let stored = rows.len();
        let mut columns: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(stored)).collect();
        for row in rows {
            debug_assert_eq!(row.len(), arity);
            for (column, value) in columns.iter_mut().zip(row) {
                column.push(value);
            }
        }
        Self::from_dense(columns, stored)
    }

    /// Logical number of rows.
    pub(crate) fn len(&self) -> usize {
        self.selection.as_ref().map_or(self.stored, |sel| sel.len())
    }

    /// True when no logical rows remain.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub(crate) fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Physical position of logical row `i`.
    fn physical(&self, i: usize) -> usize {
        match &self.selection {
            Some(sel) => sel[i] as usize,
            None => i,
        }
    }

    /// The value at logical row `i`, column `col`.
    pub(crate) fn value(&self, i: usize, col: usize) -> &Value {
        &self.columns[col][self.physical(i)]
    }

    /// Gather logical row `i` as an owned row (`arity` O(1) value clones).
    pub(crate) fn row(&self, i: usize) -> Row {
        let p = self.physical(i);
        self.columns.iter().map(|c| c[p].clone()).collect()
    }

    /// Gather the values of logical row `i` at `cols` (`cols.len()` O(1) clones).
    pub(crate) fn gather(&self, i: usize, cols: &[usize]) -> Row {
        let p = self.physical(i);
        cols.iter().map(|&c| self.columns[c][p].clone()).collect()
    }

    /// Gather the values of logical row `i` at `cols` into `out`, clearing it first:
    /// the reuse-a-scratch form of [`Batch::gather`] — the same `cols.len()` O(1)
    /// clones, but no fresh allocation once the scratch has grown to capacity.
    pub(crate) fn gather_into(&self, i: usize, cols: &[usize], out: &mut Row) {
        let p = self.physical(i);
        out.clear();
        out.extend(cols.iter().map(|&c| self.columns[c][p].clone()));
    }

    /// Append the values of logical row `i` to the corresponding output columns
    /// (`out[c]` receives column `c`), one O(1) clone per column.
    pub(crate) fn append_row_to(&self, i: usize, out: &mut [Vec<Value>]) {
        let p = self.physical(i);
        for (column, sink) in self.columns.iter().zip(out) {
            sink.push(column[p].clone());
        }
    }

    /// Hash logical row `i` across all columns — the zero-copy half of
    /// hash-then-compare membership tests (dedup, difference): no row is cloned just
    /// to ask whether it was seen before.
    pub(crate) fn hash_row(&self, i: usize) -> u64 {
        let p = self.physical(i);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for column in self.columns.iter() {
            column[p].hash(&mut hasher);
        }
        hasher.finish()
    }

    /// Is logical row `i` equal to `row`, value by value?
    pub(crate) fn row_equals(&self, i: usize, row: &[Value]) -> bool {
        let p = self.physical(i);
        self.columns.len() == row.len() && self.columns.iter().zip(row).all(|(c, v)| &c[p] == v)
    }

    /// Does logical row `i` satisfy every predicate?
    pub(crate) fn passes(&self, i: usize, predicates: &[Predicate]) -> bool {
        predicates.iter().all(|p| match p {
            Predicate::ColEqCol(a, b) => self.value(i, *a) == self.value(i, *b),
            Predicate::ColEqConst(a, c) => self.value(i, *a) == c,
        })
    }

    /// Restrict the batch to the logical rows `keep` says yes to: the columns are
    /// shared untouched, only a selection vector is written. Zero value copies.
    pub(crate) fn retain(&self, mut keep: impl FnMut(usize) -> bool) -> Batch {
        let selection: Vec<u32> = (0..self.len())
            .filter(|&i| keep(i))
            .map(|i| self.physical(i) as u32)
            .collect();
        Batch {
            columns: Arc::clone(&self.columns),
            stored: self.stored,
            selection: Some(Arc::new(selection)),
            origin_shard: self.origin_shard,
        }
    }

    /// Replace the batch's selection with an explicit list of *physical* row indices
    /// (the caller guarantees they are in range — used by the fetch kernel, whose
    /// dedup works directly over physical positions). Zero value copies.
    pub(crate) fn keep_physical(self, selection: Vec<u32>) -> Batch {
        debug_assert!(selection.iter().all(|&i| (i as usize) < self.stored));
        Batch {
            columns: self.columns,
            stored: self.stored,
            selection: Some(Arc::new(selection)),
            origin_shard: self.origin_shard,
        }
    }

    /// Project onto `cols` (in order, duplicates allowed): permutes the shared column
    /// handles. Zero value copies.
    pub(crate) fn project(&self, cols: &[usize]) -> Batch {
        Batch {
            columns: Arc::new(cols.iter().map(|&c| self.columns[c].clone()).collect()),
            stored: self.stored,
            selection: self.selection.clone(),
            origin_shard: self.origin_shard,
        }
    }

    /// Turn the batch into owned rows, returning the number of value clones this
    /// performed. Dense batches whose columns are not shared are transposed by *move*
    /// (zero clones); shared or selected batches gather.
    pub(crate) fn into_rows(self) -> (Vec<Row>, u64) {
        let len = self.len();
        if self.selection.is_none()
            && Arc::strong_count(&self.columns) == 1
            && self.columns.iter().all(|c| Arc::strong_count(c) == 1)
        {
            let columns = Arc::try_unwrap(self.columns).expect("strong count checked above");
            let mut iters: Vec<_> = columns
                .into_iter()
                .map(|c| {
                    Arc::try_unwrap(c)
                        .expect("strong count checked above")
                        .into_iter()
                })
                .collect();
            let rows = (0..len)
                .map(|_| {
                    iters
                        .iter_mut()
                        .map(|it| it.next().expect("columns have `stored` values"))
                        .collect()
                })
                .collect();
            return (rows, 0);
        }
        let clones = (len * self.arity()) as u64;
        let rows = (0..len).map(|i| self.row(i)).collect();
        (rows, clones)
    }

    /// Hand the batch's uniquely-owned buffers back to `pool` for reuse. Buffers a
    /// downstream consumer still shares are left to their remaining owners —
    /// recycling is best-effort, never a transfer of live data. Called on
    /// keyed-lookup cache teardown so steady-state probe buffers cycle through the
    /// pool instead of the allocator.
    pub(crate) fn recycle_into(self, pool: &mut super::BufferPool) {
        if let Some(selection) = self.selection {
            if let Ok(selection) = Arc::try_unwrap(selection) {
                pool.put_indices(selection);
            }
        }
        if let Ok(columns) = Arc::try_unwrap(self.columns) {
            for column in columns {
                if let Ok(column) = Arc::try_unwrap(column) {
                    pool.put_values(column);
                }
            }
        }
    }
}

/// Evaluate `predicates` over the concatenation of `left`'s logical row `i` and
/// `right`'s logical row `j` (columns `0..left.arity()` come from `left`), without
/// materializing the combined row.
pub(crate) fn passes_pair(
    left: &Batch,
    i: usize,
    right: &Batch,
    j: usize,
    predicates: &[Predicate],
) -> bool {
    let split = left.arity();
    let value = |col: usize| {
        if col < split {
            left.value(i, col)
        } else {
            right.value(j, col - split)
        }
    };
    predicates.iter().all(|p| match p {
        Predicate::ColEqCol(a, b) => value(*a) == value(*b),
        Predicate::ColEqConst(a, c) => value(*a) == c,
    })
}

/// Hash the values of physical row `idx` across `cols` — the zero-copy half of
/// hash-then-compare deduplication over freshly appended columns.
pub(crate) fn hash_row_at(cols: &[Vec<Value>], idx: usize) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for column in cols {
        column[idx].hash(&mut hasher);
    }
    hasher.finish()
}

/// Are physical rows `a` and `b` of `cols` equal in every column?
pub(crate) fn rows_equal_at(cols: &[Vec<Value>], a: usize, b: usize) -> bool {
    cols.iter().all(|column| column[a] == column[b])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Batch {
        Batch::from_dense(
            vec![
                vec![Value::int(1), Value::int(2), Value::int(3)],
                vec![Value::str("a"), Value::str("b"), Value::str("a")],
            ],
            3,
        )
    }

    #[test]
    fn dense_access_and_rows() {
        let b = sample();
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.value(1, 0), &Value::int(2));
        assert_eq!(b.row(2), vec![Value::int(3), Value::str("a")]);
        assert_eq!(b.gather(0, &[1]), vec![Value::str("a")]);
    }

    #[test]
    fn retain_composes_selections_without_copying() {
        let b = sample();
        let odd = b.retain(|i| i % 2 == 0); // physical rows 0 and 2
        assert_eq!(b.len(), 3, "retain does not mutate the source");
        assert_eq!(odd.len(), 2);
        assert_eq!(odd.row(1), vec![Value::int(3), Value::str("a")]);
        // A second retain composes through the existing selection.
        let last = odd.retain(|i| i == 1);
        assert_eq!(last.len(), 1);
        assert_eq!(last.value(0, 0), &Value::int(3));
    }

    #[test]
    fn project_permutes_handles() {
        let b = sample();
        let swapped = b.project(&[1, 0, 1]);
        assert_eq!(swapped.arity(), 3);
        assert_eq!(
            swapped.row(0),
            vec![Value::str("a"), Value::int(1), Value::str("a")]
        );
        // Projection after selection keeps the selection.
        let sel = b.retain(|i| i == 1).project(&[1]);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel.value(0, 0), &Value::str("b"));
    }

    #[test]
    fn predicates_on_batches_and_pairs() {
        let b = Batch::from_dense(
            vec![
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(1), Value::int(5)],
            ],
            2,
        );
        assert!(b.passes(0, &[Predicate::ColEqCol(0, 1)]));
        assert!(!b.passes(1, &[Predicate::ColEqCol(0, 1)]));
        assert!(b.passes(1, &[Predicate::ColEqConst(1, Value::int(5))]));

        let left = Batch::singleton(vec![Value::int(7)]);
        let right = Batch::from_dense(vec![vec![Value::int(7), Value::int(8)]], 2);
        assert!(passes_pair(
            &left,
            0,
            &right,
            0,
            &[Predicate::ColEqCol(0, 1)]
        ));
        assert!(!passes_pair(
            &left,
            0,
            &right,
            1,
            &[Predicate::ColEqCol(0, 1)]
        ));
    }

    #[test]
    fn into_rows_moves_unique_dense_batches() {
        let (rows, clones) = sample().into_rows();
        assert_eq!(clones, 0, "unshared dense columns transpose by move");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::int(1), Value::str("a")]);

        // A shared batch (exchange-style clone alive) must gather instead.
        let b = sample();
        let alias = b.clone();
        let (rows, clones) = b.into_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(clones, 6);
        drop(alias);

        // A selected batch gathers only the selected rows.
        let (rows, clones) = sample().retain(|i| i == 1).into_rows();
        assert_eq!(rows, vec![vec![Value::int(2), Value::str("b")]]);
        assert_eq!(clones, 2);
    }

    #[test]
    fn zero_column_batches_keep_their_length() {
        let unit = Batch::singleton(Vec::new());
        assert_eq!(unit.arity(), 0);
        assert_eq!(unit.len(), 1);
        let (rows, clones) = unit.into_rows();
        assert_eq!(rows, vec![Vec::<Value>::new()]);
        assert_eq!(clones, 0);

        let empty = Batch::from_rows(2, Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.arity(), 2);
    }

    #[test]
    fn origin_shard_survives_metadata_operations() {
        let tagged = sample().with_origin_shard(Some(3));
        assert_eq!(tagged.origin_shard(), Some(3));
        assert_eq!(tagged.retain(|i| i == 0).origin_shard(), Some(3));
        assert_eq!(tagged.project(&[1]).origin_shard(), Some(3));
        assert_eq!(
            tagged.clone().keep_physical(vec![0]).origin_shard(),
            Some(3)
        );
        // Freshly gathered batches are unrouted until a shard branch tags them.
        assert_eq!(sample().origin_shard(), None);
        assert_eq!(Batch::singleton(vec![Value::int(1)]).origin_shard(), None);
    }

    #[test]
    fn hash_then_compare_helpers() {
        let cols = vec![
            vec![Value::int(1), Value::int(1), Value::int(2)],
            vec![Value::str("x"), Value::str("x"), Value::str("x")],
        ];
        assert_eq!(hash_row_at(&cols, 0), hash_row_at(&cols, 1));
        assert!(rows_equal_at(&cols, 0, 1));
        assert!(!rows_equal_at(&cols, 0, 2));
        // Zero-column rows are all equal — the degenerate case the fetch dedup hits
        // when a projection drops every output position.
        let none: Vec<Vec<Value>> = Vec::new();
        assert!(rows_equal_at(&none, 0, 5));
        assert_eq!(hash_row_at(&none, 0), hash_row_at(&none, 5));
    }
}

//! Parameterized query families for the Table 1 (complexity) experiment.
//!
//! Table 1 of the paper states the complexity of the five decision problems per query
//! class. We cannot "run" a complexity class, but we can run the corresponding analyses
//! on query families of growing size and observe the scaling behaviour:
//!
//! * **CQP(CQ)** is PTIME — the coverage check on chain queries scales polynomially;
//! * **CQP(UCQ)**, **UEP**, **LEP**, **QSP** and the `A`-equivalence reasoning are
//!   NP/Πᵖ₂-hard — the enumeration-based procedures blow up with the number of variables,
//!   which the experiment makes visible.
//!
//! The family is a *chain* schema `R1(a, b), …, Rn(a, b)` with one access constraint
//! `Ri(a → b, N)` per relation, and chain queries
//! `Q(xₙ) :- R1(c, x₁), R2(x₁, x₂), …, Rn(xₙ₋₁, xₙ)` — anchored chains are covered,
//! unanchored ones are not.

use bea_core::access::{AccessConstraint, AccessSchema};
use bea_core::error::Result;
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::query::term::Arg;
use bea_core::query::ucq::UnionQuery;
use bea_core::schema::Catalog;
use bea_core::value::Value;

/// The chain catalog with `n` binary relations `R1 … Rn`.
pub fn chain_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 1..=n {
        c.declare(format!("R{i}"), ["a", "b"])
            .expect("static schema");
    }
    c
}

/// One `Ri(a → b, bound)` constraint per relation.
pub fn chain_schema(catalog: &Catalog, bound: u64) -> AccessSchema {
    AccessSchema::from_constraints(
        catalog
            .relations()
            .map(|r| {
                AccessConstraint::new(catalog, r.name(), &["a"], &["b"], bound)
                    .expect("static constraint")
            })
            .collect::<Vec<_>>(),
    )
}

/// The anchored chain query of length `n`: covered under the chain schema.
pub fn anchored_chain(catalog: &Catalog, n: usize) -> Result<ConjunctiveQuery> {
    let mut builder = ConjunctiveQuery::builder(format!("Chain{n}"))
        .head([format!("x{n}")])
        .atom("R1", [Arg::Const(Value::int(1)), Arg::var("x1")]);
    for i in 2..=n {
        builder = builder.atom(
            format!("R{i}"),
            [Arg::var(format!("x{}", i - 1)), Arg::var(format!("x{i}"))],
        );
    }
    builder.build(catalog)
}

/// The unanchored chain query: its first variable is not covered, so the query is not
/// covered (and not bounded) under the chain schema. Its parameters are the chain
/// variables, so QSP has something to work with.
pub fn unanchored_chain(catalog: &Catalog, n: usize) -> Result<ConjunctiveQuery> {
    let mut builder = ConjunctiveQuery::builder(format!("Open{n}"))
        .head([format!("x{n}")])
        .atom("R1", [Arg::var("x0"), Arg::var("x1")]);
    for i in 2..=n {
        builder = builder.atom(
            format!("R{i}"),
            [Arg::var(format!("x{}", i - 1)), Arg::var(format!("x{i}"))],
        );
    }
    builder = builder.params(["x0"]);
    builder.build(catalog)
}

/// A chain query with one extra dangling atom that is not indexed in the "backwards"
/// direction: bounded but not covered, so the upper-envelope search has work to do.
pub fn chain_with_dangling_atom(catalog: &Catalog, n: usize) -> Result<ConjunctiveQuery> {
    let mut builder = ConjunctiveQuery::builder(format!("Dangling{n}"))
        .head([format!("x{n}")])
        .atom("R1", [Arg::Const(Value::int(1)), Arg::var("x1")]);
    for i in 2..=n {
        builder = builder.atom(
            format!("R{i}"),
            [Arg::var(format!("x{}", i - 1)), Arg::var(format!("x{i}"))],
        );
    }
    // The dangling atom reaches the chain head "backwards": no constraint is keyed on
    // its first position, so the atom is not indexed and the query is not covered.
    builder = builder.atom("R1", [Arg::var("w"), Arg::var("x1")]);
    builder.build(catalog)
}

/// A union of `k` anchored chains of length `n` (all covered): exercises CQP(UCQ).
pub fn chain_union(catalog: &Catalog, n: usize, k: usize) -> Result<UnionQuery> {
    let branches: Result<Vec<ConjunctiveQuery>> = (0..k)
        .map(|j| {
            let mut builder = ConjunctiveQuery::builder(format!("U{n}_{j}"))
                .head([format!("x{n}")])
                .atom("R1", [Arg::Const(Value::int(j as i64)), Arg::var("x1")]);
            for i in 2..=n {
                builder = builder.atom(
                    format!("R{i}"),
                    [Arg::var(format!("x{}", i - 1)), Arg::var(format!("x{i}"))],
                );
            }
            builder.build(catalog)
        })
        .collect();
    UnionQuery::from_branches(format!("Union{n}x{k}"), branches?)
}

/// A union of `k` chains where one branch is *not* covered but is subsumed by a covered
/// branch: forces the Πᵖ₂ subsumption test of CQP(UCQ).
pub fn chain_union_with_subsumed_branch(
    catalog: &Catalog,
    n: usize,
    k: usize,
) -> Result<UnionQuery> {
    let mut union = chain_union(catalog, n, k)?;
    // The subsumed branch repeats branch 0 with an extra unindexed atom, so it is not
    // covered itself but contributes nothing beyond branch 0.
    let mut builder = ConjunctiveQuery::builder(format!("U{n}_sub"))
        .head([format!("x{n}")])
        .atom("R1", [Arg::Const(Value::int(0)), Arg::var("x1")])
        .atom("R1", [Arg::var("w"), Arg::var("x1")]);
    for i in 2..=n {
        builder = builder.atom(
            format!("R{i}"),
            [Arg::var(format!("x{}", i - 1)), Arg::var(format!("x{i}"))],
        );
    }
    let mut branches = union.branches().to_vec();
    branches.push(builder.build(catalog)?);
    union = UnionQuery::from_branches(union.name().to_owned(), branches)?;
    Ok(union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::cover;
    use bea_core::reason::ReasonConfig;

    #[test]
    fn anchored_chains_are_covered_unanchored_are_not() {
        for n in 1..=6 {
            let catalog = chain_catalog(n);
            let schema = chain_schema(&catalog, 4);
            let anchored = anchored_chain(&catalog, n).unwrap();
            assert!(cover::is_covered(&anchored, &schema), "chain {n}");
            let open = unanchored_chain(&catalog, n).unwrap();
            assert!(!cover::is_covered(&open, &schema), "open chain {n}");
        }
    }

    #[test]
    fn dangling_chain_is_bounded_but_not_covered() {
        let catalog = chain_catalog(3);
        let schema = chain_schema(&catalog, 4);
        let q = chain_with_dangling_atom(&catalog, 3).unwrap();
        assert!(!cover::is_covered(&q, &schema));
        assert!(cover::is_bounded(&q, &schema));
    }

    #[test]
    fn unions_are_covered_including_the_subsumed_variant() {
        let catalog = chain_catalog(3);
        let schema = chain_schema(&catalog, 4);
        let plain = chain_union(&catalog, 3, 3).unwrap();
        let report = cover::ucq_coverage(&plain, &schema, &ReasonConfig::default()).unwrap();
        assert!(report.is_covered());
        assert_eq!(report.covered_branch_indices().len(), 3);

        let with_sub = chain_union_with_subsumed_branch(&catalog, 3, 2).unwrap();
        let report = cover::ucq_coverage(&with_sub, &schema, &ReasonConfig::default()).unwrap();
        assert!(report.is_covered());
        assert_eq!(report.covered_branch_indices().len(), 2);
    }
}

//! # bea-bench — the experiment harness
//!
//! Every table, figure and quantitative claim of the paper has a regenerating harness
//! here (the experiment index lives in `DESIGN.md`, the recorded results in
//! `EXPERIMENTS.md`):
//!
//! | experiment | binary | criterion bench |
//! |------------|--------|-----------------|
//! | E1 — Table 1 (complexity of BEP/CQP/UEP/LEP/QSP per query class) | `exp_table1` | `table1_complexity` |
//! | E2 — Example 1.1 (Q0 on the accidents data, bounded vs full scan) | `exp_accidents` | `accidents_q0` |
//! | E3 — "77% of CQs are boundedly evaluable under 84 constraints" | `exp_coverage_rate` | — |
//! | E4 — graph pattern queries, bounded vs subgraph matching | `exp_graph` | `graph_patterns` |
//! | E5 — envelope approximation bounds (Section 4) | `exp_envelopes` | — |
//! | E6 — bounded specialization (Section 5, Example 5.1) | `exp_specialization` | — |
//! | E7 — ablations (effective syntax vs semantic analysis, rewrites, budgets) | — | `ablations` |
//!
//! The library part holds the pieces shared by the binaries and the criterion benches:
//! scenario builders ([`scenarios`]), chain-query families for the complexity experiment
//! ([`families`]), and small text-table helpers ([`report`]).

pub mod families;
pub mod report;
pub mod scenarios;

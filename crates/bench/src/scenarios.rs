//! Shared experiment scenarios: generated database + access schema + queries, packaged
//! so the binaries and the criterion benches measure exactly the same thing.

use crate::report::{BenchEntry, PipelineBenchReport};
use bea_core::access::AccessSchema;
use bea_core::error::Result;
use bea_core::plan::{
    bounded_plan, bounded_plan_ucq, lower_plan_with, LowerOptions, PhysicalPlan, QueryPlan,
};
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::query::ucq::UnionQuery;
use bea_core::reason::ReasonConfig;
use bea_core::schema::Catalog;
use bea_engine::{
    execute_physical_on, execute_physical_with_options, execute_plan_on, execute_plan_with_options,
    AccessStats, ExecOptions, Session, SessionConfig, SharedStore, SubmitError,
};
use bea_storage::{IndexedDatabase, ShardedDatabase, Store};
use bea_workload::{accidents, ecommerce, graph};

/// The Example 1.1 scenario at a given scale: an indexed accidents database, the query
/// Q0 and its boundedly evaluable plan.
pub struct AccidentsScenario {
    /// The relational schema.
    pub catalog: Catalog,
    /// ψ1–ψ4.
    pub schema: AccessSchema,
    /// The indexed database (satisfies ψ1–ψ4 by construction).
    pub indexed: IndexedDatabase,
    /// Q0 anchored at a district/day present in the data.
    pub q0: ConjunctiveQuery,
    /// The boundedly evaluable plan for Q0.
    pub plan: QueryPlan,
}

impl AccidentsScenario {
    /// Build the scenario with roughly `total_tuples` tuples.
    pub fn with_total_tuples(total_tuples: u64, seed: u64) -> Result<Self> {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = accidents::AccidentsConfig::with_total_tuples(total_tuples, seed);
        let db = accidents::generate(&config)?;
        let q0 = accidents::q0(
            &catalog,
            &accidents::district_value(0),
            &accidents::date_value(1),
        )?;
        let plan = bounded_plan(&q0, &schema)?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;
        Ok(Self {
            catalog,
            schema,
            indexed,
            q0,
            plan,
        })
    }
}

/// The graph-search scenario: an indexed social graph plus a personalized pattern query
/// (anchored at person 1) and the equivalent global pattern for contrast.
pub struct GraphScenario {
    /// The relational schema of the graph encoding.
    pub catalog: Catalog,
    /// Degree-bound access schema.
    pub schema: AccessSchema,
    /// The indexed graph.
    pub indexed: IndexedDatabase,
    /// The personalized pattern (friends of person 1 in NYC who like cycling).
    pub personalized: ConjunctiveQuery,
    /// Its boundedly evaluable plan.
    pub plan: QueryPlan,
    /// The global (unanchored) pattern — not boundedly evaluable.
    pub global: ConjunctiveQuery,
}

impl GraphScenario {
    /// Build the scenario for a graph with the given number of persons.
    pub fn with_persons(num_persons: u32, seed: u64) -> Result<Self> {
        let catalog = graph::catalog();
        let config = graph::GraphConfig {
            num_persons,
            max_degree: 64,
            avg_degree: 16,
            num_cities: 5,
            num_tags: 10,
            max_likes: 5,
            seed,
        };
        let schema = graph::access_schema(&catalog, &config);
        let db = graph::generate(&config)?;
        let personalized =
            graph::personalized_query(&catalog, 1, &graph::city_value(0), &graph::tag_value(0))?;
        let plan = bounded_plan(&personalized, &schema)?;
        let global = graph::global_pattern(&catalog, &graph::tag_value(0))?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;
        Ok(Self {
            catalog,
            schema,
            indexed,
            personalized,
            plan,
            global,
        })
    }
}

/// The e-commerce scenario: an indexed product/order/customer database plus the
/// "orders of one customer, with product prices" query anchored at a known customer —
/// the shape bounded specialization produces (Section 5) once the user is fixed.
pub struct EcommerceScenario {
    /// The relational schema.
    pub catalog: Catalog,
    /// Key + per-category + per-user constraints.
    pub schema: AccessSchema,
    /// The indexed database (satisfies the schema by construction).
    pub indexed: IndexedDatabase,
    /// The anchored orders-of-customer query.
    pub query: ConjunctiveQuery,
    /// Its boundedly evaluable plan.
    pub plan: QueryPlan,
}

impl EcommerceScenario {
    /// Build the scenario for the given number of customers.
    pub fn with_customers(num_customers: u32, seed: u64) -> Result<Self> {
        let catalog = ecommerce::catalog();
        let schema = ecommerce::access_schema(&catalog);
        let config = ecommerce::EcommerceConfig {
            num_customers,
            seed,
            ..ecommerce::EcommerceConfig::default()
        };
        let db = ecommerce::generate(&config)?;
        // "Prices of everything customer 3 ordered" — covered once uid is a constant.
        let query = ConjunctiveQuery::builder("OrdersOf3")
            .head(["price"])
            .atom("Orders", ["oid", "uid", "pid", "day"])
            .atom("Product", ["pid", "category", "brand", "price"])
            .eq("uid", 3i64)
            .build(&catalog)?;
        let plan = bounded_plan(&query, &schema)?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;
        Ok(Self {
            catalog,
            schema,
            indexed,
            query,
            plan,
        })
    }
}

/// The parallel-pipelines scenario: a union of `branches` independently anchored Q0
/// queries over one accidents database — the "batch of personalized queries" shape.
/// Lowered with exchange points, each branch becomes its own pipeline, so this is the
/// multi-pipeline workload the parallel scheduler targets: at `threads = 1` it
/// reproduces sequential streaming; at higher thread counts the branches run
/// concurrently with identical data access.
pub struct ParallelScenario {
    /// The relational schema.
    pub catalog: Catalog,
    /// ψ1–ψ4.
    pub schema: AccessSchema,
    /// The indexed database.
    pub indexed: IndexedDatabase,
    /// The union of anchored Q0 branches.
    pub query: UnionQuery,
    /// Its boundedly evaluable (union) plan.
    pub plan: QueryPlan,
    /// The plan lowered with exchange points: one pipeline per branch plus the output
    /// pipeline.
    pub physical: PhysicalPlan,
}

impl ParallelScenario {
    /// Build the scenario with `branches` anchored branches over roughly
    /// `total_tuples` tuples.
    pub fn with_branches(branches: u32, total_tuples: u64, seed: u64) -> Result<Self> {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = accidents::AccidentsConfig::with_total_tuples(total_tuples, seed);
        let db = accidents::generate(&config)?;
        let queries: Vec<ConjunctiveQuery> = (0..branches)
            .map(|day| {
                accidents::q0(
                    &catalog,
                    &accidents::district_value(day % config.num_districts),
                    &accidents::date_value(day % config.num_days),
                )
            })
            .collect::<Result<_>>()?;
        let query = UnionQuery::from_branches("Q0batch", queries)?;
        let plan = bounded_plan_ucq(&query, &schema, &ReasonConfig::default())?;
        let physical =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true))?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;
        Ok(Self {
            catalog,
            schema,
            indexed,
            query,
            plan,
            physical,
        })
    }
}

/// The morsel-parallelism scenario: one *heavy* pipeline instead of many small ones.
/// A single anchor key fans out to `fan_out` rows with distinct join keys, which a
/// second hop joins through the fused keyed-lookup pattern — so the exchange-lowered
/// plan has one morsel-splittable probe pipeline whose materialized source spans
/// `fan_out / 1024` batches. This is the shape the jobs-of-morsels scheduler targets:
/// at `threads = 1` the chain runs unsplit; at higher thread counts the scheduler cuts
/// the probe stream into morsels that fill the shared lookup cache concurrently, with
/// identical rows, data access, copy traffic and probe-path buffer demand at every
/// morsel size (asserted in `tests/properties.rs` and below).
pub struct MorselScenario {
    /// The relational schema (R(a, b) fan-out, S(k, v) lookups).
    pub catalog: Catalog,
    /// a → b with bound `fan_out`; k → v with bound 1.
    pub schema: AccessSchema,
    /// The indexed database.
    pub indexed: IndexedDatabase,
    /// The two-hop anchored lookup chain.
    pub plan: QueryPlan,
    /// The plan lowered with exchange points: the heavy probe pipeline is
    /// morsel-splittable.
    pub physical: PhysicalPlan,
    /// Rows the anchor fans out to (= distinct keys the second hop fills).
    pub fan_out: u32,
}

impl MorselScenario {
    /// Build the scenario with the given fan-out.
    pub fn with_fan_out(fan_out: u32, seed: u64) -> Result<Self> {
        use bea_core::access::AccessConstraint;
        use bea_core::plan::{PlanBuilder, Predicate};
        use bea_core::value::Value;

        let catalog = {
            let mut c = Catalog::new();
            c.declare("R", ["a", "b"])?;
            c.declare("S", ["k", "v"])?;
            c
        };
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new(&catalog, "R", &["a"], &["b"], u64::from(fan_out))?,
            AccessConstraint::new(&catalog, "S", &["k"], &["v"], 1u64)?,
        ]);
        let offset = 100_000 + (seed as i64 % 1_000);
        let mut db = bea_storage::Database::new(catalog.clone());
        db.extend(
            "R",
            (0..i64::from(fan_out)).map(|i| vec![Value::int(1), Value::int(offset + i)]),
        )?;
        db.extend(
            "S",
            (0..i64::from(fan_out)).map(|i| vec![Value::int(offset + i), Value::int(i)]),
        )?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;

        let plan = {
            let mut b = PlanBuilder::new();
            let anchor = b.constant(Value::int(1), "x");
            let r = b.fetch(
                anchor,
                vec![0],
                "R",
                vec![0],
                vec![1],
                0,
                vec!["a".into(), "b".into()],
            );
            let s = b.fetch(
                r,
                vec![1],
                "S",
                vec![0],
                vec![1],
                1,
                vec!["k".into(), "v".into()],
            );
            let joined = b.product(r, s);
            let selected = b.select(joined, vec![Predicate::ColEqCol(1, 2)]);
            let out = b.project(selected, vec![1, 3]);
            b.finish("MorselChain", out)?
        };
        let physical =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true))?;
        Ok(Self {
            catalog,
            schema,
            indexed,
            plan,
            physical,
            fan_out,
        })
    }
}

/// The sharded-execution scenario: the anchored Q0 accidents query fanned out over `K`
/// index-partition shards. The physical plan is lowered with a shard fan-out equal to
/// the store's shard count, so every keyed fetch becomes one branch per shard probing
/// only the partition that owns its keys — the pipeline DAG gains one shard-local
/// pipeline per branch, which is the shape shard-affine scheduling and (eventually)
/// NUMA placement target. The unsharded `indexed` twin of the same data is kept so
/// invariants (same rows, same access totals, same copy traffic) are assertable
/// against shards = 1.
pub struct ShardedScenario {
    /// The relational schema.
    pub catalog: Catalog,
    /// ψ1–ψ4.
    pub schema: AccessSchema,
    /// The sharded store (`shards` index partitions per constraint).
    pub sharded: ShardedDatabase,
    /// The same data, unsharded — the shards = 1 baseline.
    pub indexed: IndexedDatabase,
    /// Q0 anchored at a district/day present in the data.
    pub q0: ConjunctiveQuery,
    /// The boundedly evaluable plan for Q0.
    pub plan: QueryPlan,
    /// The plan lowered with shard fan-out (and exchange points): one shard-local
    /// pipeline per branch.
    pub physical: PhysicalPlan,
    /// Number of shards.
    pub shards: u32,
}

impl ShardedScenario {
    /// Build the scenario with `shards` shards over roughly `total_tuples` tuples.
    pub fn with_shards(shards: u32, total_tuples: u64, seed: u64) -> Result<Self> {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = accidents::AccidentsConfig::with_total_tuples(total_tuples, seed);
        let db = accidents::generate(&config)?;
        let q0 = accidents::q0(
            &catalog,
            &accidents::district_value(0),
            &accidents::date_value(1),
        )?;
        let plan = bounded_plan(&q0, &schema)?;
        let physical = lower_plan_with(
            &plan,
            &LowerOptions::new()
                .with_exchange_parallelism(true)
                .with_shard_fanout(shards),
        )?;
        let sharded = ShardedDatabase::build(db.clone(), schema.clone(), shards)?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;
        Ok(Self {
            catalog,
            schema,
            sharded,
            indexed,
            q0,
            plan,
            physical,
            shards,
        })
    }
}

/// The multi-query service scenario: one shared accidents store plus a mixed batch of
/// priced queries — an *admitted* set of independently anchored Q0 plans and a
/// *rejected* set of Q0-storm unions whose static fetch bound exceeds the budget. The
/// budget is derived from the cost model itself (the largest admitted bound), so the
/// accept/reject split is a property of the plans, not a tuned constant: the session's
/// admission controller must admit every `admitted` plan and refuse every `rejected`
/// one, at any load and under any submission interleaving. This is the workload shape
/// the `bead` daemon serves: concurrent clients sharing one store and one fetch budget.
pub struct ConcurrentTrafficScenario {
    /// The relational schema.
    pub catalog: Catalog,
    /// ψ1–ψ4.
    pub schema: AccessSchema,
    /// The shared store the session's workers run against.
    pub store: SharedStore,
    /// Plans priced within the budget — every one must be admitted.
    pub admitted: Vec<QueryPlan>,
    /// Plans priced above the budget — every one must be rejected.
    pub rejected: Vec<QueryPlan>,
    /// The aggregate fetch budget: the largest admitted bound.
    pub budget: u64,
}

impl ConcurrentTrafficScenario {
    /// Build the scenario: `admitted` anchored Q0 plans and `rejected` three-branch
    /// Q0 unions over roughly `total_tuples` tuples.
    pub fn with_traffic(
        admitted: u32,
        rejected: u32,
        total_tuples: u64,
        seed: u64,
    ) -> Result<Self> {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = accidents::AccidentsConfig::with_total_tuples(total_tuples, seed);
        let db = accidents::generate(&config)?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;
        let db_size = indexed.size();

        let admitted: Vec<QueryPlan> = (0..admitted)
            .map(|day| {
                let q0 = accidents::q0(
                    &catalog,
                    &accidents::district_value(day % config.num_districts),
                    &accidents::date_value(day % config.num_days),
                )?;
                bounded_plan(&q0, &schema)
            })
            .collect::<Result<_>>()?;
        let rejected: Vec<QueryPlan> = (0..rejected)
            .map(|i| {
                let branches: Vec<ConjunctiveQuery> = (0..3u32)
                    .map(|j| {
                        accidents::q0(
                            &catalog,
                            &accidents::district_value((i + j) % config.num_districts),
                            &accidents::date_value((i * 3 + j) % config.num_days),
                        )
                    })
                    .collect::<Result<_>>()?;
                let union = UnionQuery::from_branches(format!("Q0storm{i}"), branches)?;
                bounded_plan_ucq(&union, &schema, &ReasonConfig::default())
            })
            .collect::<Result<_>>()?;

        // The budget is the cost model's own split point: every single-branch plan
        // fits, every three-branch storm prices ~3× above it.
        let budget = admitted
            .iter()
            .map(|plan| plan.cost(&schema, db_size).max_fetched_tuples)
            .max()
            .unwrap_or(1)
            .max(1);
        for plan in &rejected {
            let bound = plan.cost(&schema, db_size).max_fetched_tuples;
            assert!(
                bound > budget,
                "storm plan {} prices at {bound}, within the budget {budget} — \
                 the scenario's accept/reject split collapsed",
                plan.query_name()
            );
        }
        Ok(Self {
            catalog,
            schema,
            store: SharedStore::from(indexed),
            admitted,
            rejected,
            budget,
        })
    }

    /// Run the full mixed batch through a fresh budgeted [`Session`] at `threads`
    /// workers, every query submitted from its own thread. Returns how many were
    /// admitted and how many rejected; errors from admitted queries propagate.
    pub fn drive_session(&self, threads: usize) -> Result<(usize, usize)> {
        let session = Session::new(
            self.store.clone(),
            SessionConfig::new()
                .with_threads(threads)
                .with_fetch_budget(self.budget),
        );
        let outcomes: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .admitted
                .iter()
                .chain(&self.rejected)
                .map(|plan| {
                    let session = &session;
                    scope.spawn(move || match session.submit(plan) {
                        Ok(handle) => handle.wait().map(|_| true),
                        Err(SubmitError::Rejected { .. }) => Ok(false),
                        Err(SubmitError::Invalid(error)) => Err(error),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter thread"))
                .collect::<Result<_>>()
        })?;
        let peak = session.admission_stats().peak_admitted_bound;
        assert!(
            peak <= self.budget,
            "admitted bounds peaked at {peak} over the budget {}",
            self.budget
        );
        session.shutdown();
        let admitted = outcomes.iter().filter(|&&ok| ok).count();
        Ok((admitted, outcomes.len() - admitted))
    }
}

/// The scenario scales the perf record is measured at — shared by `exp_table1` and the
/// `ablations` bench so `BENCH_pipeline.json` means the same thing wherever it is
/// emitted. Kept moderate so the CI perf-smoke stays fast.
pub const BENCH_REPORT_SEED: u64 = 42;

/// Build the `BENCH_pipeline.json` record: run the streaming pipeline once per
/// scenario for the access/residency/copy-traffic/probe-allocation numbers (all
/// deterministic), then `timing_iters` more times for the latency distribution
/// (`ns_p50`/`ns_p99`, nearest-rank over the per-iteration samples). `timing_iters = 0`
/// records zero for both timing fields (used by smoke runs that only care about the
/// deterministic fields; the `--check` tail gate skips zero baselines).
pub fn pipeline_bench_report(timing_iters: u32) -> Result<PipelineBenchReport> {
    let accidents = AccidentsScenario::with_total_tuples(20_000, BENCH_REPORT_SEED)?;
    let graph = GraphScenario::with_persons(500, BENCH_REPORT_SEED)?;
    let ecommerce = EcommerceScenario::with_customers(300, BENCH_REPORT_SEED)?;
    let batch = ParallelScenario::with_branches(6, 20_000, BENCH_REPORT_SEED)?;
    let sharded = ShardedScenario::with_shards(4, 20_000, BENCH_REPORT_SEED)?;
    let morsel = MorselScenario::with_fan_out(16_384, BENCH_REPORT_SEED)?;

    let mut report = PipelineBenchReport::default();
    let single = ExecOptions::new().with_threads(1);
    let cases: [(&str, &QueryPlan, &IndexedDatabase); 3] = [
        ("accidents_q0", &accidents.plan, &accidents.indexed),
        ("graph_personalized", &graph.plan, &graph.indexed),
        ("ecommerce_orders", &ecommerce.plan, &ecommerce.indexed),
    ];
    for (name, plan, indexed) in cases {
        let (_, stats) = execute_plan_with_options(plan, indexed, &single)?;
        let (ns_p50, ns_p99) = time_percentiles(timing_iters, || {
            execute_plan_with_options(plan, indexed, &single).map(|_| ())
        })?;
        report.insert(
            name,
            BenchEntry {
                rows_fetched: stats.tuples_fetched,
                peak_rows_resident: stats.peak_rows_resident,
                values_cloned: stats.values_cloned,
                allocs_per_probe: stats.allocs_per_probe,
                rows_served_from_cache: stats.rows_served_from_cache,
                ns_p50,
                ns_p99,
            },
        );
    }
    // The multi-pipeline scenario: every recorded counter comes from the 1-thread run
    // (`values_cloned` and the access counters are identical at every thread count,
    // and the 1-thread residency peak is schedule-independent — the 4-thread peak
    // depends on pipeline overlap and would make the committed record flaky). Only
    // the wall-clock figure is taken at 4 workers, the scenario's target shape.
    let (_, stats) = execute_physical_with_options(&batch.physical, &batch.indexed, &single)?;
    let parallel = ExecOptions::new().with_threads(4);
    let (ns_p50, ns_p99) = time_percentiles(timing_iters, || {
        execute_physical_with_options(&batch.physical, &batch.indexed, &parallel).map(|_| ())
    })?;
    report.insert(
        "parallel_q0_batch_6",
        BenchEntry {
            rows_fetched: stats.tuples_fetched,
            peak_rows_resident: stats.peak_rows_resident,
            values_cloned: stats.values_cloned,
            allocs_per_probe: stats.allocs_per_probe,
            rows_served_from_cache: stats.rows_served_from_cache,
            ns_p50,
            ns_p99,
        },
    );
    // The morsel scenario records the same way: deterministic fields from the
    // 1-thread (unsplit) run — morsel splitting is asserted not to change any of
    // them — and wall clock at 4 workers, where the scheduler actually cuts the
    // heavy probe pipeline into morsels.
    let (_, stats) = execute_physical_with_options(&morsel.physical, &morsel.indexed, &single)?;
    let (ns_p50, ns_p99) = time_percentiles(timing_iters, || {
        execute_physical_with_options(&morsel.physical, &morsel.indexed, &parallel).map(|_| ())
    })?;
    report.insert(
        "morsel_chain_fan_16384",
        BenchEntry {
            rows_fetched: stats.tuples_fetched,
            peak_rows_resident: stats.peak_rows_resident,
            values_cloned: stats.values_cloned,
            allocs_per_probe: stats.allocs_per_probe,
            rows_served_from_cache: stats.rows_served_from_cache,
            ns_p50,
            ns_p99,
        },
    );
    // The sharded scenario follows the same recording convention: deterministic
    // fields from the sequential run (pipelines execute in step order, so the peak is
    // schedule-independent; access counters and copy traffic are shard- and
    // thread-invariant anyway), wall clock at 4 workers — the shard-affine schedule
    // the scenario exists to exercise.
    let sharded_store = Store::Sharded(&sharded.sharded);
    let (_, stats) = execute_physical_on(&sharded.physical, sharded_store, &single)?;
    let (ns_p50, ns_p99) = time_percentiles(timing_iters, || {
        execute_physical_on(&sharded.physical, sharded_store, &parallel).map(|_| ())
    })?;
    report.insert(
        "sharded_q0_shards_4",
        BenchEntry {
            rows_fetched: stats.tuples_fetched,
            peak_rows_resident: stats.peak_rows_resident,
            values_cloned: stats.values_cloned,
            allocs_per_probe: stats.allocs_per_probe,
            rows_served_from_cache: stats.rows_served_from_cache,
            ns_p50,
            ns_p99,
        },
    );
    // The multi-query service scenario. Deterministic fields come from serial,
    // single-threaded runs of the *admitted* set (the session is asserted elsewhere
    // to reproduce them exactly, so recording the serial numbers keeps the committed
    // record schedule-independent): totals are summed across the admitted queries,
    // the residency peak is the largest single-query peak. Wall clock is the real
    // thing — a fresh 4-worker budgeted session per iteration, the whole mixed batch
    // (admitted + rejected) submitted concurrently, drained, and shut down; at
    // `timing_iters = 0` no session is ever created.
    let traffic = ConcurrentTrafficScenario::with_traffic(4, 2, 20_000, BENCH_REPORT_SEED)?;
    let mut entry = BenchEntry::default();
    for plan in &traffic.admitted {
        let (_, stats) = execute_plan_on(plan, traffic.store.store(), &single)?;
        entry.rows_fetched += stats.tuples_fetched;
        entry.values_cloned += stats.values_cloned;
        entry.allocs_per_probe += stats.allocs_per_probe;
        entry.peak_rows_resident = entry.peak_rows_resident.max(stats.peak_rows_resident);
    }
    (entry.ns_p50, entry.ns_p99) = time_percentiles(timing_iters, || {
        let (admitted, rejected) = traffic.drive_session(4)?;
        debug_assert_eq!(
            (admitted, rejected),
            (traffic.admitted.len(), traffic.rejected.len())
        );
        Ok(())
    })?;
    report.insert("service_mixed_traffic", entry);
    // The cross-query fetch-cache scenario: the first admitted anchored Q0 submitted
    // twice through one cache-enabled session (1 worker — the deterministic counters
    // are thread-invariant, but a single worker keeps the two legs strictly ordered).
    // The cold leg reproduces the uncached counters — filling the cache is a side
    // effect, never a cost the query pays. The warm leg is what the hot tier exists
    // for: zero store fetches, zero probe-path buffer demand, every posting row
    // served out of the cache. Both legs are committed so `--check` holds the warm
    // `allocs_per_probe: 0` baseline with zero slack and pins `rows_served_from_cache`
    // like any other deterministic counter. Wall clock times each leg at its own
    // temperature: the cold figure pays a fresh session + first-touch fill per
    // iteration, the warm figure is the steady-state repeat inside one session.
    let plan = &traffic.admitted[0];
    let cached_session = || {
        Session::new(
            traffic.store.clone(),
            SessionConfig::new()
                .with_threads(1)
                .with_cache_budget_rows(1 << 20),
        )
    };
    let submit = |session: &Session| -> Result<AccessStats> {
        match session.submit(plan) {
            Ok(handle) => handle.wait().map(|(_, stats)| stats),
            // No fetch budget is configured on this session, so admission never
            // rejects; an invalid plan is a real error.
            Err(SubmitError::Rejected { .. }) => unreachable!("unbudgeted session rejected a plan"),
            Err(SubmitError::Invalid(error)) => Err(error),
        }
    };
    let session = cached_session();
    let cold = submit(&session)?;
    let warm = submit(&session)?;
    session.shutdown();
    assert_eq!(
        (warm.tuples_fetched, warm.allocs_per_probe),
        (0, 0),
        "the warm repeat must be served entirely from the session cache"
    );
    assert_eq!(
        warm.rows_served_from_cache, cold.tuples_fetched,
        "the warm repeat must cover exactly the cold leg's fetch volume"
    );
    let (cold_p50, cold_p99) = time_percentiles(timing_iters, || {
        let session = cached_session();
        let stats = submit(&session)?;
        session.shutdown();
        debug_assert_eq!(stats.tuples_fetched, cold.tuples_fetched);
        Ok(())
    })?;
    report.insert(
        "cached_repeat_traffic_cold",
        BenchEntry {
            rows_fetched: cold.tuples_fetched,
            peak_rows_resident: cold.peak_rows_resident,
            values_cloned: cold.values_cloned,
            allocs_per_probe: cold.allocs_per_probe,
            rows_served_from_cache: cold.rows_served_from_cache,
            ns_p50: cold_p50,
            ns_p99: cold_p99,
        },
    );
    let warm_session = cached_session();
    submit(&warm_session)?; // prime the cache once outside the timed region
    let (warm_p50, warm_p99) = time_percentiles(timing_iters, || {
        let stats = submit(&warm_session)?;
        debug_assert_eq!(stats.tuples_fetched, 0);
        Ok(())
    })?;
    warm_session.shutdown();
    report.insert(
        "cached_repeat_traffic_warm",
        BenchEntry {
            rows_fetched: warm.tuples_fetched,
            peak_rows_resident: warm.peak_rows_resident,
            values_cloned: warm.values_cloned,
            allocs_per_probe: warm.allocs_per_probe,
            rows_served_from_cache: warm.rows_served_from_cache,
            ns_p50: warm_p50,
            ns_p99: warm_p99,
        },
    );
    Ok(report)
}

/// `(p50, p99)` nanoseconds per call of `op` over `iters` individually timed calls
/// (0 → no measurement, `(0, 0)`). Nearest-rank percentiles over the sorted samples:
/// p50 is `samples[len / 2]`, p99 is `samples[ceil(0.99 · len) - 1]` — at small `iters`
/// the p99 is simply the slowest sample, which is exactly the figure a tail-latency
/// budget should gate on.
pub fn time_percentiles(iters: u32, mut op: impl FnMut() -> Result<()>) -> Result<(u64, u64)> {
    if iters == 0 {
        return Ok((0, 0));
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = std::time::Instant::now();
        op()?;
        samples.push(start.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let p50 = samples[samples.len() / 2];
    let p99_rank = (samples.len() * 99).div_ceil(100);
    let p99 = samples[p99_rank - 1];
    Ok((p50, p99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_engine::{eval_cq, eval_ucq, execute_plan};

    /// The perf record is complete, deterministic (same numbers on a second build) and
    /// internally consistent with a direct execution of the same scenarios.
    #[test]
    fn pipeline_bench_report_is_deterministic_and_complete() {
        let report = pipeline_bench_report(0).unwrap();
        for scenario in [
            "accidents_q0",
            "graph_personalized",
            "ecommerce_orders",
            "parallel_q0_batch_6",
            "morsel_chain_fan_16384",
            "sharded_q0_shards_4",
            "service_mixed_traffic",
            "cached_repeat_traffic_cold",
        ] {
            let entry = report
                .scenarios
                .get(scenario)
                .unwrap_or_else(|| panic!("missing scenario {scenario}"));
            assert!(entry.rows_fetched > 0, "{scenario} fetched nothing");
            assert!(entry.values_cloned > 0, "{scenario} cloned nothing");
            assert!(entry.peak_rows_resident > 0);
            // Cold single-shot executions pay their cache misses; only the warmed
            // anchored fast path is zero-allocation (asserted in the property tests).
            assert!(entry.allocs_per_probe > 0, "{scenario} demanded no buffers");
            assert_eq!(
                entry.rows_served_from_cache, 0,
                "{scenario} runs cold — nothing is cached yet"
            );
            assert_eq!(entry.ns_p50, 0, "timing_iters = 0 records no timing");
            assert_eq!(entry.ns_p99, 0, "timing_iters = 0 records no timing");
        }
        // The warm leg inverts the cold invariants: the store is never touched, the
        // probe path demands no buffers, and the entire cold fetch volume is served
        // out of the session cache instead.
        let cold = &report.scenarios["cached_repeat_traffic_cold"];
        let warm = &report.scenarios["cached_repeat_traffic_warm"];
        assert_eq!(warm.rows_fetched, 0, "warm repeat must not touch the store");
        assert_eq!(warm.allocs_per_probe, 0, "warm repeat must not allocate");
        assert_eq!(warm.rows_served_from_cache, cold.rows_fetched);
        assert!(
            warm.values_cloned > 0,
            "cached rows still move into outputs"
        );
        assert!(warm.values_cloned < cold.values_cloned);
        assert_eq!((warm.ns_p50, warm.ns_p99), (0, 0));
        let again = pipeline_bench_report(0).unwrap();
        assert_eq!(report, again, "the deterministic fields must reproduce");
        let json = report.to_json();
        assert_eq!(
            crate::report::PipelineBenchReport::parse_json(&json).unwrap(),
            report
        );
    }

    #[test]
    fn accidents_scenario_is_consistent() {
        let scenario = AccidentsScenario::with_total_tuples(5_000, 3).unwrap();
        assert!(scenario.indexed.satisfies_schema());
        assert!(scenario.plan.is_bounded_under(&scenario.schema));
        let (bounded, stats) = execute_plan(&scenario.plan, &scenario.indexed).unwrap();
        let (naive, _) = eval_cq(&scenario.q0, scenario.indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive));
        assert!(stats.tuples_fetched < scenario.indexed.size());
        assert_eq!(scenario.catalog.len(), 3);
    }

    #[test]
    fn graph_scenario_is_consistent() {
        let scenario = GraphScenario::with_persons(300, 5).unwrap();
        assert!(scenario.indexed.satisfies_schema());
        let (bounded, _) = execute_plan(&scenario.plan, &scenario.indexed).unwrap();
        let (naive, _) = eval_cq(&scenario.personalized, scenario.indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive));
        assert!(!bea_core::cover::is_bounded(
            &scenario.global,
            &scenario.schema
        ));
    }

    #[test]
    fn ecommerce_scenario_is_consistent() {
        let scenario = EcommerceScenario::with_customers(120, 7).unwrap();
        assert!(scenario.indexed.satisfies_schema());
        assert!(scenario.plan.is_bounded_under(&scenario.schema));
        let (bounded, stats) = execute_plan(&scenario.plan, &scenario.indexed).unwrap();
        let (naive, _) = eval_cq(&scenario.query, scenario.indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive));
        assert!(!bounded.is_empty(), "customer 3 should have orders");
        assert!(stats.tuples_fetched < scenario.indexed.size());
        assert_eq!(scenario.catalog.len(), 3);
    }

    /// The acceptance property of the streaming rewrite, checked on every scenario
    /// family: same answers, same data access, strictly lower peak residency.
    fn assert_streaming_beats_materialized(
        plan: &bea_core::plan::QueryPlan,
        indexed: &IndexedDatabase,
    ) {
        let (streamed, streamed_stats) =
            execute_plan_with_options(plan, indexed, &ExecOptions::new()).unwrap();
        let (materialized, materialized_stats) =
            execute_plan_with_options(plan, indexed, &ExecOptions::materialized()).unwrap();
        assert!(streamed.same_rows(&materialized));
        assert!(streamed_stats.same_data_access(&materialized_stats));
        assert!(
            streamed_stats.peak_rows_resident < materialized_stats.peak_rows_resident,
            "streaming peak {} not below materialized peak {}",
            streamed_stats.peak_rows_resident,
            materialized_stats.peak_rows_resident
        );
    }

    #[test]
    fn streaming_residency_win_on_accidents() {
        let scenario = AccidentsScenario::with_total_tuples(5_000, 3).unwrap();
        assert_streaming_beats_materialized(&scenario.plan, &scenario.indexed);
    }

    #[test]
    fn streaming_residency_win_on_graph() {
        let scenario = GraphScenario::with_persons(300, 5).unwrap();
        assert_streaming_beats_materialized(&scenario.plan, &scenario.indexed);
    }

    #[test]
    fn streaming_residency_win_on_ecommerce() {
        let scenario = EcommerceScenario::with_customers(120, 7).unwrap();
        assert_streaming_beats_materialized(&scenario.plan, &scenario.indexed);
    }

    /// The acceptance property of sharded execution on its target scenario: a
    /// shards = 4 / threads = 4 run of the anchored Q0 fan-out fetches *exactly* the
    /// same total rows as shards = 1 — boundedness is preserved under partitioning,
    /// asserted via the per-shard `AccessStats` (the shard counts sum to the total and
    /// the work genuinely spreads over several partitions) — and the sharded pipeline
    /// DAG exposes parallel width of at least the shard count.
    #[test]
    fn sharded_scenario_preserves_boundedness_under_partitioning() {
        let scenario = ShardedScenario::with_shards(4, 10_000, BENCH_REPORT_SEED).unwrap();
        assert!(scenario.sharded.satisfies_schema());
        assert!(scenario.plan.is_bounded_under(&scenario.schema));
        assert_eq!(scenario.catalog.len(), 3);

        let dag = scenario.physical.pipeline_dag();
        assert!(
            dag.parallel_width() >= scenario.shards as usize,
            "sharded DAG width {} below shard count {}",
            dag.parallel_width(),
            scenario.shards
        );
        // The branch pipelines carry their shard tags (what the scheduler's affinity
        // keys on), covering every shard.
        let tags: std::collections::BTreeSet<u32> =
            dag.pipelines().iter().filter_map(|p| p.shard).collect();
        assert_eq!(tags.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);

        // shards = 1 baseline: the plain indexed store, single-threaded.
        let (baseline, baseline_stats) = execute_plan_with_options(
            &scenario.plan,
            &scenario.indexed,
            &ExecOptions::new().with_threads(1),
        )
        .unwrap();
        // The sharded run at the scenario's target shape: 4 shards × 4 threads.
        let (sharded, sharded_stats) = execute_physical_on(
            &scenario.physical,
            Store::Sharded(&scenario.sharded),
            &ExecOptions::new().with_threads(4),
        )
        .unwrap();

        assert!(sharded.same_rows(&baseline));
        assert_eq!(
            sharded_stats.tuples_fetched, baseline_stats.tuples_fetched,
            "partitioning changed the fetch volume"
        );
        assert!(sharded_stats.same_data_access(&baseline_stats));
        assert_eq!(sharded_stats.values_cloned, baseline_stats.values_cloned);
        // Per-shard boundedness: the partitions serve exactly the total, and more
        // than one partition actually serves (the anchored keys spread at this seed).
        assert_eq!(
            sharded_stats.rows_fetched_by_shard.values().sum::<u64>(),
            sharded_stats.tuples_fetched
        );
        assert!(
            sharded_stats.rows_fetched_by_shard.len() >= 2,
            "all fetches landed on one shard: {:?}",
            sharded_stats.rows_fetched_by_shard
        );
        assert!(sharded_stats.tuples_fetched < scenario.sharded.size());

        let (naive, _) = eval_cq(&scenario.q0, scenario.sharded.database()).unwrap();
        assert!(sharded.same_rows(&naive));
    }

    /// The acceptance property of morsel parallelism on its target scenario: the
    /// heavy chain genuinely lowers to a morsel-splittable pipeline with a multi-batch
    /// source, and executing it at 4 threads with morsel sizes from one-batch-per-
    /// morsel to never-split changes neither the rows nor any deterministic counter
    /// relative to the 1-thread unsplit baseline.
    #[test]
    fn morsel_scenario_is_invariant_across_morsel_sizes() {
        let scenario = MorselScenario::with_fan_out(4_096, BENCH_REPORT_SEED).unwrap();
        assert!(scenario.indexed.satisfies_schema());
        assert_eq!(scenario.catalog.len(), 2);
        assert!(
            scenario
                .physical
                .pipeline_dag()
                .pipelines()
                .iter()
                .any(|p| p.morsel_source.is_some()),
            "the chain must lower to a morsel-splittable pipeline"
        );

        let (baseline, baseline_stats) = execute_physical_with_options(
            &scenario.physical,
            &scenario.indexed,
            &ExecOptions::new().with_threads(1),
        )
        .unwrap();
        assert_eq!(baseline.len(), scenario.fan_out as usize);
        let (naive, _) =
            eval_cq(&chain_query(&scenario.catalog), scenario.indexed.database()).unwrap();
        assert!(baseline.same_rows(&naive), "chain disagrees with naive");

        for morsel_size in [1usize, 0, usize::MAX] {
            let (table, stats) = execute_physical_with_options(
                &scenario.physical,
                &scenario.indexed,
                &ExecOptions::new()
                    .with_threads(4)
                    .with_morsel_size(morsel_size),
            )
            .unwrap();
            assert_eq!(
                table.rows(),
                baseline.rows(),
                "rows (or their order) changed at morsel size {morsel_size}"
            );
            assert!(
                stats.same_data_access(&baseline_stats),
                "data access changed at morsel size {morsel_size}"
            );
            assert_eq!(
                stats.values_cloned, baseline_stats.values_cloned,
                "copy traffic changed at morsel size {morsel_size}"
            );
            assert_eq!(
                stats.allocs_per_probe, baseline_stats.allocs_per_probe,
                "probe-path buffer demand changed at morsel size {morsel_size}"
            );
        }
    }

    /// The acceptance property of the multi-query service scenario: the cost model
    /// really splits the batch (every admitted plan prices within the budget, every
    /// storm above it), a concurrent budgeted session admits and rejects exactly
    /// those sets, the admitted queries reproduce their serial rows, and the
    /// admitted bounds' high-water mark stays within the budget (asserted inside
    /// `drive_session`).
    #[test]
    fn concurrent_traffic_scenario_splits_exactly_on_the_budget() {
        let traffic = ConcurrentTrafficScenario::with_traffic(4, 2, 10_000, 7).unwrap();
        assert_eq!(traffic.admitted.len(), 4);
        assert_eq!(traffic.rejected.len(), 2);
        let db_size = traffic.store.store().size();
        for plan in &traffic.admitted {
            assert!(
                plan.cost(&traffic.schema, db_size).max_fetched_tuples <= traffic.budget,
                "admitted plan {} prices above the budget",
                plan.query_name()
            );
        }

        let (admitted, rejected) = traffic.drive_session(4).unwrap();
        assert_eq!(
            (admitted, rejected),
            (4, 2),
            "the session's accept/reject split drifted from the cost model's"
        );

        // The session reproduces the serial rows for every admitted plan.
        let session = Session::new(
            traffic.store.clone(),
            SessionConfig::new()
                .with_threads(4)
                .with_fetch_budget(traffic.budget),
        );
        for plan in &traffic.admitted {
            let (serial, serial_stats) = execute_plan_on(
                plan,
                traffic.store.store(),
                &ExecOptions::new().with_threads(1),
            )
            .unwrap();
            let (table, stats) = session.submit(plan).unwrap().wait().unwrap();
            assert_eq!(
                table.rows(),
                serial.rows(),
                "rows drifted for {}",
                plan.query_name()
            );
            assert!(
                stats.same_data_access(&serial_stats),
                "data access drifted for {}",
                plan.query_name()
            );
        }
        session.shutdown();
    }

    /// The scenario's chain as a conjunctive query, for the naive differential.
    fn chain_query(catalog: &Catalog) -> bea_core::query::cq::ConjunctiveQuery {
        bea_core::query::cq::ConjunctiveQuery::builder("MorselChainNaive")
            .head(["b", "v"])
            .atom("R", ["a", "b"])
            .atom("S", ["b", "v"])
            .eq("a", 1i64)
            .build(catalog)
            .unwrap()
    }

    /// The acceptance property of the parallel scheduler on its target scenario: the
    /// plan genuinely decomposes into independent pipelines; 1-thread and 4-thread
    /// execution produce the identical table with identical data access; and the
    /// concurrent residency peak is an upper bound on (never less than) the
    /// single-threaded streaming peak for the same physical plan.
    ///
    /// The peak comparison is deterministic *for this scenario shape* (it is not an
    /// invariant of arbitrary plans/schedules): the sequential peak occurs while the
    /// output pipeline drains the branch materializations — every branch result is
    /// resident plus the accumulating union/dedup state — and the output pipeline runs
    /// last, alone, with the identical resident trajectory under every schedule, so
    /// any parallel run passes through the sequential maximum.
    #[test]
    fn parallel_scenario_is_consistent_across_thread_counts() {
        let scenario = ParallelScenario::with_branches(6, 5_000, 11).unwrap();
        assert!(scenario.indexed.satisfies_schema());
        let dag = scenario.physical.pipeline_dag();
        assert!(dag.len() >= 7, "6 branches + output, got {}", dag.len());
        assert!(dag.parallel_width() >= 6);

        let (single, single_stats) = execute_physical_with_options(
            &scenario.physical,
            &scenario.indexed,
            &ExecOptions::new().with_threads(1),
        )
        .unwrap();
        let (parallel, parallel_stats) = execute_physical_with_options(
            &scenario.physical,
            &scenario.indexed,
            &ExecOptions::new().with_threads(4),
        )
        .unwrap();
        assert_eq!(single.rows(), parallel.rows());
        assert!(single_stats.same_data_access(&parallel_stats));
        assert!(
            parallel_stats.peak_rows_resident >= single_stats.peak_rows_resident,
            "concurrent peak {} understates the single-threaded peak {}",
            parallel_stats.peak_rows_resident,
            single_stats.peak_rows_resident
        );

        let (naive, _) = eval_ucq(&scenario.query, scenario.indexed.database()).unwrap();
        assert!(single.same_rows(&naive));
        assert!(!single.is_empty(), "anchored branches should have answers");
        assert!(single_stats.tuples_fetched < scenario.indexed.size());
    }
}

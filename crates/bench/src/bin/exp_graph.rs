//! E4 — personalized graph pattern queries: bounded evaluation vs full-relation joins.
//!
//! Paper reference points (introduction, citing [11]): 60% of graph pattern queries on
//! real-life Web graphs are boundedly evaluable under simple access constraints, and
//! bounded evaluation outperforms conventional subgraph-isomorphism evaluation by about
//! four orders of magnitude. We reproduce the shape on synthetic degree-bounded social
//! graphs: the read ratio between the baseline and the bounded plan grows with the graph,
//! reaching 10³–10⁴ at moderate sizes, and a majority of a random pattern workload is
//! covered.
//!
//! Run with `cargo run --release -p bea-bench --bin exp_graph`.

use bea_bench::report::{fmt_ms, time_ms, TextTable};
use bea_bench::scenarios::GraphScenario;
use bea_core::cover;
use bea_engine::{eval_cq, execute_plan};
use bea_workload::querygen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E4 — personalized graph search: bounded vs conventional evaluation\n");
    let mut table = TextTable::new([
        "persons",
        "graph tuples",
        "bounded reads",
        "bounded time",
        "naive reads",
        "naive time",
        "read ratio",
    ]);

    for &persons in &[2_000u32, 10_000, 50_000] {
        let scenario = GraphScenario::with_persons(persons, 9)?;
        let size = scenario.indexed.size();
        let ((bounded, stats), bounded_ms) =
            time_ms(|| execute_plan(&scenario.plan, &scenario.indexed).expect("plan executes"));
        let ((naive, naive_stats), naive_ms) = time_ms(|| {
            eval_cq(&scenario.personalized, scenario.indexed.database()).expect("naive evaluates")
        });
        assert!(bounded.same_rows(&naive));
        table.row([
            persons.to_string(),
            size.to_string(),
            stats.tuples_fetched.to_string(),
            fmt_ms(bounded_ms),
            naive_stats.tuples_scanned.to_string(),
            fmt_ms(naive_ms),
            format!(
                "{:.0}x",
                naive_stats.tuples_scanned as f64 / stats.tuples_fetched.max(1) as f64
            ),
        ]);
    }
    table.print();

    // Fraction of a random pattern workload that is boundedly evaluable (paper: 60%).
    let scenario = GraphScenario::with_persons(2_000, 9)?;
    let workload = querygen::random_workload_from_db(
        &scenario.catalog,
        Some(&scenario.schema),
        scenario.indexed.database(),
        200,
        &querygen::QueryGenConfig::default(),
    )?;
    let covered = workload
        .iter()
        .filter(|q| cover::is_covered(q, &scenario.schema))
        .count();
    println!(
        "\nrandom pattern workload: {}/{} queries ({:.0}%) are covered by the degree-bound \
         access schema (paper reference point: 60% of pattern queries).",
        covered,
        workload.len(),
        100.0 * covered as f64 / workload.len() as f64
    );
    println!(
        "the global (unanchored) pattern is correctly reported as not boundedly evaluable: {}",
        !cover::is_bounded(&scenario.global, &scenario.schema)
    );
    Ok(())
}

//! E3 — coverage rate of a CQ workload as the access schema grows.
//!
//! Paper reference point (Example 1.1 / [12]): 77% of conjunctive queries on the UK
//! accident data are boundedly evaluable under 84 simple access constraints. We mine
//! constraints from generated accident data, take prefixes of increasing size, and report
//! the fraction of a 500-query workload that is covered (plus the fraction that the full
//! bounded-evaluability analysis accepts).
//!
//! Run with `cargo run --release -p bea-bench --bin exp_coverage_rate`.

use bea_bench::report::TextTable;
use bea_core::access::AccessSchema;
use bea_core::bounded::{analyze_cq, BoundedConfig};
use bea_core::cover;
use bea_storage::{discover_constraints, DiscoveryOptions};
use bea_workload::{accidents, querygen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E3 — fraction of a CQ workload that is boundedly evaluable\n");
    let catalog = accidents::catalog();
    let handcrafted = accidents::access_schema(&catalog);
    let db = accidents::generate(&accidents::AccidentsConfig {
        num_days: 20,
        avg_accidents_per_day: 100,
        avg_casualties_per_accident: 2,
        num_districts: 20,
        seed: 11,
    })?;

    // Mine constraints from the data ("simple aggregate queries on D0", Example 1.1).
    let mined = discover_constraints(
        &db,
        &DiscoveryOptions {
            max_key_size: 2,
            max_cardinality: 5_000,
            include_empty_keys: true,
        },
    )?;
    println!(
        "mined {} candidate access constraints from the data\n",
        mined.len()
    );

    let workload = querygen::random_workload_from_db(
        &catalog,
        Some(&handcrafted),
        &db,
        500,
        &querygen::QueryGenConfig::default(),
    )?;

    let mut table = TextTable::new([
        "constraint set",
        "#constraints",
        "covered (CQP)",
        "bounded (analysis)",
    ]);
    let analysis_config = BoundedConfig::default();
    let mut measure = |label: &str, schema: &AccessSchema| {
        let covered = workload
            .iter()
            .filter(|q| cover::is_covered(q, schema))
            .count();
        let bounded = workload
            .iter()
            .filter(|q| {
                analyze_cq(q, schema, &analysis_config)
                    .map(|v| v.is_bounded())
                    .unwrap_or(false)
            })
            .count();
        let pct = |n: usize| format!("{:.0}%", 100.0 * n as f64 / workload.len() as f64);
        table.row([
            label.to_owned(),
            schema.len().to_string(),
            pct(covered),
            pct(bounded),
        ]);
    };

    measure("none", &AccessSchema::new());
    for &prefix in &[4usize, 12, 28, 84] {
        let take = prefix.min(mined.len());
        let schema = AccessSchema::from_constraints(mined[..take].to_vec());
        measure(&format!("mined, first {take}"), &schema);
    }
    measure("hand-written ψ1–ψ4", &handcrafted);
    table.print();

    println!(
        "\nPaper reference point: 77% of the real workload is boundedly evaluable under 84 \
         mined constraints; the synthetic workload shows the same monotone growth of the \
         covered fraction with the constraint set, and the full analysis accepts at least \
         as many queries as the PTIME coverage test alone."
    );
    Ok(())
}

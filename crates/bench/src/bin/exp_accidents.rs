//! E2 — Example 1.1: answer Q0 on the accidents data by accessing a bounded amount of
//! data, versus a full-scan baseline, as the database grows.
//!
//! Paper reference points: Q0 can be answered by accessing at most
//! 610 + 610·192·2 = 234_850 tuples out of >31 million (and typically ~3_050), and the
//! bounded plans of [12] take ~9 seconds where MySQL needs >14 hours. We reproduce the
//! *shape*: the bounded column stays flat while the baseline grows linearly with |D|.
//!
//! Run with `cargo run --release -p bea-bench --bin exp_accidents`.

use bea_bench::report::{fmt_ms, time_ms, TextTable};
use bea_bench::scenarios::AccidentsScenario;
use bea_engine::{eval_cq, execute_plan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E2 — Example 1.1: bounded evaluation of Q0 vs full scan\n");
    let mut table = TextTable::new([
        "|D| (tuples)",
        "answers",
        "bounded: tuples read",
        "bounded: time",
        "naive: tuples read",
        "naive: time",
        "speedup",
        "static bound",
    ]);

    let sizes: Vec<u64> = std::env::args()
        .nth(1)
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![25_000, 100_000, 400_000, 1_600_000]);

    for &target in &sizes {
        let scenario = AccidentsScenario::with_total_tuples(target, 42)?;
        assert!(scenario.indexed.satisfies_schema());
        let size = scenario.indexed.size();

        let ((bounded, bounded_stats), bounded_ms) =
            time_ms(|| execute_plan(&scenario.plan, &scenario.indexed).expect("plan executes"));
        let ((naive, naive_stats), naive_ms) = time_ms(|| {
            eval_cq(&scenario.q0, scenario.indexed.database()).expect("naive evaluates")
        });
        assert!(bounded.same_rows(&naive), "answers must agree");

        let static_bound = scenario
            .plan
            .cost(&scenario.schema, size)
            .max_fetched_tuples;
        table.row([
            size.to_string(),
            bounded.len().to_string(),
            bounded_stats.tuples_fetched.to_string(),
            fmt_ms(bounded_ms),
            naive_stats.tuples_scanned.to_string(),
            fmt_ms(naive_ms),
            format!("{:.1}x", naive_ms / bounded_ms.max(1e-6)),
            static_bound.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nThe bounded plan's reads and latency are flat in |D| (they are bounded a priori \
         by ψ1–ψ4: the static bound column), while the baseline grows linearly — the \
         paper's \"access small data\" effect."
    );
    Ok(())
}

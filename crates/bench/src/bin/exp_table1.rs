//! E1 — Table 1: the five decision problems per query class, observed through the
//! scaling of the corresponding analyses.
//!
//! Table 1 of the paper gives worst-case complexity: CQP is PTIME for CQ and
//! Πᵖ₂-complete for UCQ/∃FO⁺; BEP is EXPSPACE-complete; UEP/LEP/QSP are NP- to
//! Πᵖ₂-complete; everything is undecidable for FO. A reproduction cannot measure
//! complexity classes, but it can (a) verify that every analysis returns the decision the
//! theory predicts on the chain families, and (b) show the scaling split between the
//! PTIME coverage test and the enumeration-based procedures as queries grow.
//!
//! Run with `cargo run --release -p bea-bench --bin exp_table1`.

//! Besides the printed report, the binary maintains the machine-readable perf record:
//!
//! * `exp_table1` — full run; also writes `BENCH_pipeline.json` (scenario →
//!   rows_fetched / peak_rows_resident / values_cloned / allocs_per_probe /
//!   rows_served_from_cache / ns_p50 / ns_p99) to the working directory, the committed
//!   baseline of the streaming pipeline's copy traffic, probe-path buffer demand,
//!   cross-query cache service, and latency distribution.
//! * `exp_table1 --check <baseline.json>` — perf-smoke mode (used by CI): rebuild the
//!   record and fail (exit 1) if any deterministic counter (`values_cloned`,
//!   `allocs_per_probe`, `rows_served_from_cache`) regressed more than 10% above the
//!   committed baseline — the warm cached-repeat leg commits `allocs_per_probe: 0`,
//!   which a zero baseline holds with zero slack — if the
//!   scenario set drifted from the committed record in either direction, or if any
//!   scenario's fresh p99 blew the tail-latency budget
//!   `max(50 ms, baseline p99 × 25)` — loose enough for machine-to-machine variance,
//!   tight enough to catch order-of-magnitude tail blowups.

use bea_bench::families;
use bea_bench::report::{fmt_ms, time_ms, PipelineBenchReport, TextTable};
use bea_bench::scenarios::{
    pipeline_bench_report, AccidentsScenario, ConcurrentTrafficScenario, EcommerceScenario,
    GraphScenario, MorselScenario, ParallelScenario, ShardedScenario,
};
use bea_core::bounded::{analyze_cq, BoundedConfig};
use bea_core::cover;
use bea_core::envelope::{lower_envelope_cq, upper_envelope_cq, EnvelopeConfig};
use bea_core::plan::lower_plan;
use bea_core::reason::ReasonConfig;
use bea_core::specialize::{specialize_cq, SpecializeConfig};
use bea_engine::{
    execute_physical_on, execute_physical_with_options, execute_plan_with_options, ExecOptions,
};
use bea_storage::Store;

/// Tolerated growth of the deterministic counters (`values_cloned`,
/// `allocs_per_probe`, `rows_served_from_cache`) over the committed baseline, in
/// percent. A zero baseline tolerates exactly zero — the anchored fast path's
/// zero-allocation guarantee gets no slack.
const CLONE_REGRESSION_TOLERANCE_PERCENT: u64 = 10;

/// Tail-latency budget: a fresh p99 may exceed the committed baseline p99 by this
/// factor before `--check` fails. Deliberately loose — the baseline was recorded on a
/// different machine; the gate is for order-of-magnitude blowups, not jitter.
const P99_BUDGET_FACTOR: u64 = 25;

/// Absolute floor of the tail budget in nanoseconds (50 ms): scenarios whose baseline
/// p99 is tiny would otherwise fail on scheduler noise alone.
const P99_FLOOR_NS: u64 = 50_000_000;

/// Timed iterations per scenario in `--check` mode — enough samples for a meaningful
/// nearest-rank p99 while keeping the CI perf-smoke fast.
const CHECK_TIMING_ITERS: u32 = 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let Some(baseline_path) = args.get(pos + 1) else {
            eprintln!(
                "error: --check needs a baseline path, e.g. \
                 `exp_table1 --check BENCH_pipeline.json`"
            );
            std::process::exit(1);
        };
        return check_against_baseline(baseline_path);
    }
    run_experiments()?;

    // The machine-readable perf record, committed as the regression baseline.
    println!("\n## BENCH_pipeline.json — pipeline perf record\n");
    let report = pipeline_bench_report(CHECK_TIMING_ITERS)?;
    let json = report.to_json();
    std::fs::write("BENCH_pipeline.json", &json)?;
    print!("{json}");
    println!("(written to BENCH_pipeline.json)");
    Ok(())
}

/// Perf-smoke mode: recompute the pipeline record and gate on the deterministic
/// counters (`values_cloned`, `allocs_per_probe`, exact scenario-set match) plus the
/// p99 tail-latency budget. A missing or malformed baseline is an operator error,
/// reported as a plain one-line message (never a panic or an opaque `Err` debug dump)
/// with the fix spelled out.
fn check_against_baseline(baseline_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "error: cannot read the perf baseline `{baseline_path}`: {error}\n\
                 hint: the baseline is committed at the repository root as \
                 BENCH_pipeline.json; regenerate it with \
                 `cargo run --release -p bea-bench --bin exp_table1` and commit the \
                 refreshed file."
            );
            std::process::exit(1);
        }
    };
    let baseline = match PipelineBenchReport::parse_json(&text) {
        Ok(baseline) => baseline,
        Err(reason) => {
            eprintln!(
                "error: the perf baseline `{baseline_path}` is malformed: {reason}\n\
                 hint: regenerate it with \
                 `cargo run --release -p bea-bench --bin exp_table1` and commit the \
                 refreshed file."
            );
            std::process::exit(1);
        }
    };
    let fresh = pipeline_bench_report(CHECK_TIMING_ITERS)?;
    let mut violations = fresh.regressions_against(&baseline, CLONE_REGRESSION_TOLERANCE_PERCENT);
    violations.extend(fresh.tail_latency_regressions(&baseline, P99_BUDGET_FACTOR, P99_FLOOR_NS));
    for (name, entry) in &fresh.scenarios {
        let (base_cloned, base_allocs, base_p99) = baseline.scenarios.get(name).map_or_else(
            || ("-".to_owned(), "-".to_owned(), "-".to_owned()),
            |b| {
                (
                    b.values_cloned.to_string(),
                    b.allocs_per_probe.to_string(),
                    b.ns_p99.to_string(),
                )
            },
        );
        println!(
            "{name}: values_cloned {} (baseline {base_cloned}), allocs_per_probe {} \
             (baseline {base_allocs}), p50 {} ns, p99 {} ns (baseline p99 {base_p99}), \
             rows_fetched {}, rows_served_from_cache {}, peak resident {}",
            entry.values_cloned,
            entry.allocs_per_probe,
            entry.ns_p50,
            entry.ns_p99,
            entry.rows_fetched,
            entry.rows_served_from_cache,
            entry.peak_rows_resident
        );
    }
    if violations.is_empty() {
        println!(
            "perf-smoke OK: values_cloned, allocs_per_probe and rows_served_from_cache \
             within {CLONE_REGRESSION_TOLERANCE_PERCENT}% of the baseline, scenario set \
             unchanged, and p99 within max({P99_FLOOR_NS} ns, baseline × \
             {P99_BUDGET_FACTOR}) on every scenario"
        );
        Ok(())
    } else {
        for violation in &violations {
            eprintln!("perf-smoke FAILED: {violation}");
        }
        std::process::exit(1);
    }
}

fn run_experiments() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E1 — Table 1: decision problems across query classes\n");
    println!(
        "paper: BEP EXPSPACE-c | CQP PTIME (CQ) / Πᵖ₂-c (UCQ, ∃FO⁺) | UEP NP-c / Πᵖ₂-c | \
         LEP NP-c / DP-c | QSP NP-c / Πᵖ₂-c | all undecidable for FO\n"
    );

    let sizes = [2usize, 4, 6, 8, 10];
    let mut table = TextTable::new([
        "problem (class)",
        "n=2",
        "n=4",
        "n=6",
        "n=8",
        "n=10",
        "expected decision",
    ]);

    let reason = ReasonConfig::default();
    let envelope_config = EnvelopeConfig::default();
    let spec_config = SpecializeConfig::default();
    let bounded_config = BoundedConfig::default();

    // CQP(CQ): PTIME coverage check on covered chains.
    let mut row = vec!["CQP (CQ, covered chain)".to_owned()];
    for &n in &sizes {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let q = families::anchored_chain(&catalog, n)?;
        let (is_covered, ms) = time_ms(|| cover::is_covered(&q, &schema));
        assert!(is_covered);
        row.push(fmt_ms(ms));
    }
    row.push("covered".into());
    table.row(row);

    // BEP via the sound analysis on the same chains (covered fast path).
    let mut row = vec!["BEP analysis (CQ, covered chain)".to_owned()];
    for &n in &sizes {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let q = families::anchored_chain(&catalog, n)?;
        let (verdict, ms) = time_ms(|| analyze_cq(&q, &schema, &bounded_config).unwrap());
        assert!(verdict.is_bounded());
        row.push(fmt_ms(ms));
    }
    row.push("boundedly evaluable".into());
    table.row(row);

    // BEP analysis on unanchored chains: requires the (exponential) satisfiability and
    // rewrite machinery before answering "unknown".
    let mut row = vec!["BEP analysis (CQ, unanchored chain)".to_owned()];
    for &n in &sizes {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let q = families::unanchored_chain(&catalog, n)?;
        let (verdict, ms) = time_ms(|| analyze_cq(&q, &schema, &bounded_config).unwrap());
        assert!(!verdict.is_bounded());
        row.push(fmt_ms(ms));
    }
    row.push("not established (sound)".into());
    table.row(row);

    // CQP(UCQ) with a subsumed branch: the Πᵖ₂ A-instance enumeration kicks in.
    let mut row = vec!["CQP (UCQ, subsumed branch, n capped at 6)".to_owned()];
    for &n in &sizes {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let q = families::chain_union_with_subsumed_branch(&catalog, n.min(6), 2)?;
        let (report, ms) = time_ms(|| cover::ucq_coverage(&q, &schema, &reason).unwrap());
        assert!(report.is_covered());
        row.push(fmt_ms(ms));
    }
    row.push("covered (via subsumption)".into());
    table.row(row);

    // UEP: find a covered relaxation of the dangling-atom chain.
    let mut row = vec!["UEP (CQ, dangling atom)".to_owned()];
    for &n in &sizes {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let q = families::chain_with_dangling_atom(&catalog, n)?;
        let (envelope, ms) = time_ms(|| upper_envelope_cq(&q, &schema, &envelope_config).unwrap());
        assert!(envelope.is_some());
        row.push(fmt_ms(ms));
    }
    row.push("upper envelope exists".into());
    table.row(row);

    // LEP: find a covered k-expansion of the dangling-atom chain.
    let mut row = vec!["LEP (CQ, dangling atom, k=1, n capped at 6)".to_owned()];
    for &n in &sizes {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let q = families::chain_with_dangling_atom(&catalog, n.min(6))?;
        let (envelope, ms) =
            time_ms(|| lower_envelope_cq(&q, &schema, &catalog, 1, &envelope_config).unwrap());
        assert!(envelope.is_some());
        row.push(fmt_ms(ms));
    }
    row.push("lower envelope exists".into());
    table.row(row);

    // QSP: the unanchored chain becomes covered by instantiating its first variable.
    let mut row = vec!["QSP (CQ, unanchored chain, k=1)".to_owned()];
    for &n in &sizes {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let q = families::unanchored_chain(&catalog, n)?;
        let (spec, ms) = time_ms(|| specialize_cq(&q, &schema, 1, &spec_config).unwrap());
        assert!(spec.is_some());
        row.push(fmt_ms(ms));
    }
    row.push("specializable with x0".into());
    table.row(row);

    table.print();
    println!(
        "\nThe PTIME coverage test stays in the microsecond range as the query grows, while \
         the enumeration-based procedures (A-instance subsumption, satisfiability inside \
         BEP/QSP, envelope searches) grow steeply — the practical face of the complexity \
         gaps in Table 1. The FO row of Table 1 (undecidability) has no runnable \
         counterpart; the library exposes FO only through specialization (Prop. 5.4)."
    );

    // Memory residency: the same bounded plans, executed by the materialized step loop
    // and by the streaming batch pipeline. Data access is identical by construction
    // (boundedness is a property of the plan, not the execution strategy); the peak
    // number of rows concurrently resident is what lowering buys.
    println!("\n## memory residency — materialized vs streaming execution\n");
    let accidents = AccidentsScenario::with_total_tuples(20_000, 42)?;
    let graph = GraphScenario::with_persons(500, 42)?;
    let ecommerce = EcommerceScenario::with_customers(300, 42)?;
    let mut residency = TextTable::new([
        "scenario",
        "db tuples",
        "shards",
        "tuples fetched",
        "index lookups",
        "pipelines",
        "peak resident (materialized)",
        "peak resident (streaming)",
        "residency ratio",
        "values cloned (materialized)",
        "values cloned (streaming)",
        "clone ratio",
        "probe allocs (streaming)",
    ]);
    let cases = [
        ("accidents Q0", &accidents.plan, &accidents.indexed),
        ("graph personalized", &graph.plan, &graph.indexed),
        ("ecommerce orders-of", &ecommerce.plan, &ecommerce.indexed),
    ];
    for (name, plan, indexed) in cases {
        let (streamed, streaming) = execute_plan_with_options(plan, indexed, &ExecOptions::new())?;
        let (materialized_out, materialized) =
            execute_plan_with_options(plan, indexed, &ExecOptions::materialized())?;
        assert!(streamed.same_rows(&materialized_out));
        assert!(streaming.same_data_access(&materialized));
        let ratio = if streaming.peak_rows_resident > 0 {
            format!(
                "{:.1}×",
                materialized.peak_rows_resident as f64 / streaming.peak_rows_resident as f64
            )
        } else {
            "∞".to_owned()
        };
        let clone_ratio = if streaming.values_cloned > 0 {
            format!(
                "{:.1}×",
                materialized.values_cloned as f64 / streaming.values_cloned as f64
            )
        } else {
            "∞".to_owned()
        };
        let pipelines = lower_plan(plan)?.pipeline_dag().len();
        residency.row([
            name.to_owned(),
            indexed.size().to_string(),
            "1".to_owned(),
            streaming.tuples_fetched.to_string(),
            streaming.index_lookups.to_string(),
            pipelines.to_string(),
            materialized.peak_rows_resident.to_string(),
            streaming.peak_rows_resident.to_string(),
            ratio,
            materialized.values_cloned.to_string(),
            streaming.values_cloned.to_string(),
            clone_ratio,
            streaming.allocs_per_probe.to_string(),
        ]);
        let per_relation: Vec<String> = streaming
            .rows_fetched_by_relation
            .iter()
            .map(|(relation, tuples)| format!("{relation}: {tuples}"))
            .collect();
        println!("{name} fetched per relation — {}", per_relation.join(", "));
    }
    println!();
    residency.print();
    println!(
        "\nBoth strategies perform the same index lookups and fetch the same tuples; the \
         streaming pipeline just refuses to keep intermediate tables alive, so its \
         high-water mark tracks the access-schema bounds instead of the plan algebra."
    );

    // Parallel pipelines: a batch of independently anchored Q0 branches, lowered with
    // exchange points so every branch is its own pipeline, executed at increasing
    // worker-thread counts. The access side is identical at every thread count —
    // parallelism scales the hardware while the access bound stays put.
    println!("\n## parallel pipelines — one exchange-lowered plan, varying threads\n");
    let batch = ParallelScenario::with_branches(6, 20_000, 42)?;
    let dag = batch.physical.pipeline_dag();
    println!(
        "q0_batch_6: {} pipelines, parallel width {} (db: {} tuples)\n",
        dag.len(),
        dag.parallel_width(),
        batch.indexed.size()
    );
    let mut parallel_table = TextTable::new([
        "threads",
        "tuples fetched",
        "index lookups",
        "peak rows resident",
        "probe allocs",
        "wall time",
    ]);
    let mut single_threaded: Option<bea_engine::AccessStats> = None;
    for threads in [1usize, 2, 4] {
        let options = ExecOptions::new().with_threads(threads);
        let (result, ms) =
            time_ms(|| execute_physical_with_options(&batch.physical, &batch.indexed, &options));
        let (_, stats) = result?;
        if let Some(baseline) = &single_threaded {
            assert!(
                baseline.same_data_access(&stats),
                "thread count changed the data access"
            );
            assert_eq!(
                baseline.allocs_per_probe, stats.allocs_per_probe,
                "thread count changed the probe-path buffer demand"
            );
            assert!(stats.peak_rows_resident >= baseline.peak_rows_resident);
        }
        parallel_table.row([
            threads.to_string(),
            stats.tuples_fetched.to_string(),
            stats.index_lookups.to_string(),
            stats.peak_rows_resident.to_string(),
            stats.allocs_per_probe.to_string(),
            fmt_ms(ms),
        ]);
        single_threaded.get_or_insert(stats);
    }
    parallel_table.print();
    println!(
        "\nEvery thread count reads exactly the same tuples through the same index \
         lookups; only the schedule (and hence wall time on multi-core hardware, plus \
         the overlap-induced residency peak) changes."
    );

    // Morsel parallelism: one *heavy* pipeline instead of many small ones. The
    // exchange-lowered chain has a single morsel-splittable probe pipeline whose
    // source spans many batches; the scheduler cuts it into morsels that run as
    // concurrent operator-chain instances over a shared fill-once lookup cache.
    // Every deterministic counter is asserted morsel-size-invariant.
    println!("\n## morsel parallelism — one heavy pipeline, varying morsel size\n");
    let morsel = MorselScenario::with_fan_out(16_384, 42)?;
    println!(
        "morsel_chain: fan-out {} over {} tuples, {} pipelines ({} morsel-splittable)\n",
        morsel.fan_out,
        morsel.indexed.size(),
        morsel.physical.pipeline_dag().len(),
        morsel
            .physical
            .pipeline_dag()
            .pipelines()
            .iter()
            .filter(|p| p.morsel_source.is_some())
            .count()
    );
    let mut morsel_table = TextTable::new([
        "threads",
        "morsel rows",
        "tuples fetched",
        "index lookups",
        "peak rows resident",
        "probe allocs",
        "wall p50",
    ]);
    let mut unsplit: Option<bea_engine::AccessStats> = None;
    // (threads, morsel_size, label): 1 thread never splits; at 4 threads the morsel
    // size sweeps from never-split through the default to one-batch morsels.
    let legs = [
        (1usize, usize::MAX, "unsplit".to_owned()),
        (4, usize::MAX, "unsplit".to_owned()),
        (
            4,
            0,
            format!("{} (default)", bea_engine::DEFAULT_MORSEL_ROWS),
        ),
        (4, 1, "per source batch".to_owned()),
    ];
    // Time the legs *interleaved* (round-robin, one sample per leg per round) and
    // report each leg's fastest sample: background load drifts over seconds, so
    // back-to-back per-leg loops would charge the drift to whichever leg ran under
    // it, while the minimum estimates each leg's noise-free cost.
    const MORSEL_TIMING_ROUNDS: usize = 12;
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); legs.len()];
    for _ in 0..MORSEL_TIMING_ROUNDS {
        for (leg, (threads, morsel_size, _)) in legs.iter().enumerate() {
            let options = ExecOptions::new()
                .with_threads(*threads)
                .with_morsel_size(*morsel_size);
            let start = std::time::Instant::now();
            execute_physical_with_options(&morsel.physical, &morsel.indexed, &options)?;
            samples[leg].push(start.elapsed().as_nanos() as u64);
        }
    }
    for (leg, (threads, morsel_size, label)) in legs.into_iter().enumerate() {
        let options = ExecOptions::new()
            .with_threads(threads)
            .with_morsel_size(morsel_size);
        let (_, stats) =
            execute_physical_with_options(&morsel.physical, &morsel.indexed, &options)?;
        if let Some(baseline) = &unsplit {
            assert!(
                baseline.same_data_access(&stats),
                "morsel size changed the data access"
            );
            assert_eq!(
                baseline.values_cloned, stats.values_cloned,
                "morsel size changed the copy traffic"
            );
            assert_eq!(
                baseline.allocs_per_probe, stats.allocs_per_probe,
                "morsel size changed the probe-path buffer demand"
            );
        }
        let best = *samples[leg].iter().min().expect("rounds > 0");
        morsel_table.row([
            threads.to_string(),
            label,
            stats.tuples_fetched.to_string(),
            stats.index_lookups.to_string(),
            stats.peak_rows_resident.to_string(),
            stats.allocs_per_probe.to_string(),
            fmt_ms(best as f64 / 1e6),
        ]);
        unsplit.get_or_insert(stats);
    }
    morsel_table.print();
    let best_of = |leg: usize| *samples[leg].iter().min().expect("rounds > 0") as f64 / 1e6;
    println!(
        "\nbest-of-{MORSEL_TIMING_ROUNDS}: 1 thread {:.2} ms | 4 threads unsplit {:.2} ms | \
         split (default morsel) {:.2} ms — split speedup {:.2}× vs unsplit at 4 threads, \
         {:.2}× vs 1 thread",
        best_of(0),
        best_of(1),
        best_of(2),
        best_of(1) / best_of(2),
        best_of(0) / best_of(2)
    );
    println!(
        "\nSplitting the probe stream into morsels spreads the fills of the shared \
         lookup cache across workers without changing a single deterministic counter: \
         whole source batches are never cut, each distinct key is filled exactly once, \
         and per-morsel outputs concatenate in morsel order."
    );

    // Sharded execution: the anchored Q0 plan fanned out over K index-partition
    // shards. The per-shard branches probe only the partitions owning their keys, so
    // the fetch totals — and the copy traffic — are identical to shards = 1 while the
    // pipeline DAG gains one shard-local pipeline per shard (run here at 4 workers,
    // the shard-affine schedule).
    println!("\n## sharded execution — anchored Q0 over K index-partition shards\n");
    let mut sharded_table = TextTable::new([
        "shards",
        "pipelines",
        "parallel width",
        "tuples fetched",
        "fetched per shard",
        "values cloned",
        "probe allocs",
        "wall time",
    ]);
    let mut unsharded: Option<bea_engine::AccessStats> = None;
    for shards in [1u32, 4] {
        let scenario = ShardedScenario::with_shards(shards, 20_000, 42)?;
        let dag = scenario.physical.pipeline_dag();
        let store = Store::Sharded(&scenario.sharded);
        let options = ExecOptions::new().with_threads(4);
        let (result, ms) = time_ms(|| execute_physical_on(&scenario.physical, store, &options));
        let (_, stats) = result?;
        if let Some(baseline) = &unsharded {
            assert!(
                baseline.same_data_access(&stats),
                "shard count changed the data access"
            );
            assert_eq!(
                baseline.values_cloned, stats.values_cloned,
                "shard count changed the copy traffic"
            );
            assert_eq!(
                baseline.allocs_per_probe, stats.allocs_per_probe,
                "shard count changed the probe-path buffer demand"
            );
        }
        let per_shard: Vec<String> = stats
            .rows_fetched_by_shard
            .iter()
            .map(|(shard, tuples)| format!("s{shard}: {tuples}"))
            .collect();
        sharded_table.row([
            shards.to_string(),
            dag.len().to_string(),
            dag.parallel_width().to_string(),
            stats.tuples_fetched.to_string(),
            per_shard.join(", "),
            stats.values_cloned.to_string(),
            stats.allocs_per_probe.to_string(),
            fmt_ms(ms),
        ]);
        unsharded.get_or_insert(stats);
    }
    sharded_table.print();
    println!(
        "\nPartitioning the constraint indexes relocates the bounded fetch volume \
         across shards (the per-shard counts always sum to the same total) without \
         changing what is read or copied — boundedness survives sharding, and the \
         shard-local pipelines give the scheduler real parallel width."
    );

    // The multi-query service: a mixed batch of priced queries against one shared
    // store under an aggregate fetch budget, every query submitted from its own
    // client thread. The accept/reject split and the aggregate-bound ceiling are
    // asserted, not just printed — bounded evaluability makes admission *exact*.
    println!("\n## multi-query service — fetch-bound admission over one shared store\n");
    let traffic = ConcurrentTrafficScenario::with_traffic(4, 2, 20_000, 42)?;
    let db_size = traffic.store.store().size();
    let mut service_table = TextTable::new(["query", "fetch bound", "verdict"]);
    for plan in traffic.admitted.iter().chain(&traffic.rejected) {
        let bound = plan.cost(&traffic.schema, db_size).max_fetched_tuples;
        let verdict = if bound <= traffic.budget {
            "admit"
        } else {
            "reject"
        };
        assert_eq!(
            verdict == "admit",
            traffic.admitted.iter().any(|p| std::ptr::eq(p, plan)),
            "the cost model's verdict drifted from the scenario's split"
        );
        service_table.row([
            plan.query_name().to_owned(),
            bound.to_string(),
            verdict.into(),
        ]);
    }
    let ((admitted, rejected), ms) = {
        let (result, ms) = time_ms(|| traffic.drive_session(4));
        (result?, ms)
    };
    assert_eq!(
        (admitted, rejected),
        (traffic.admitted.len(), traffic.rejected.len()),
        "the session's accept/reject split drifted from the cost model's"
    );
    service_table.print();
    println!(
        "\nbudget {} tuples | {} admitted, {} rejected (exactly the priced split; the \
         admitted bounds' high-water mark is asserted ≤ budget inside the drive) | \
         mixed batch drained concurrently at 4 workers in {}",
        traffic.budget,
        admitted,
        rejected,
        fmt_ms(ms)
    );
    Ok(())
}

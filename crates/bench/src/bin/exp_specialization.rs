//! E6 — bounded query specialization (Section 5, Example 5.1).
//!
//! Paper reference points: the parameterized accident query becomes boundedly evaluable
//! by instantiating the single parameter `date` (Example 5.1); e-commerce queries ship
//! with parameters and are specialized at issue time; Proposition 5.4 guarantees bounded
//! specialization for fully parameterized FO queries when the access schema covers the
//! relational schema. We run the QSP analysis on the accident and e-commerce workloads,
//! report the minimum parameter tuples, and measure bounded vs naive evaluation of the
//! specialized queries as the data grows.
//!
//! Run with `cargo run --release -p bea-bench --bin exp_specialization`.

use bea_bench::report::{fmt_ms, time_ms, TextTable};
use bea_core::plan::bounded_plan;
use bea_core::query::fo::{FirstOrderQuery, Formula};
use bea_core::specialize::{
    always_boundedly_specializable, instantiate, specialize_cq, SpecializeConfig,
};
use bea_core::value::Value;
use bea_engine::{eval_cq, execute_plan};
use bea_storage::IndexedDatabase;
use bea_workload::{accidents, ecommerce};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E6 — bounded query specialization\n");
    let spec_config = SpecializeConfig::default();

    // Which parameters must be instantiated? (QSP with k = 2.)
    let mut qsp = TextTable::new(["query", "parameters", "minimum tuple (k ≤ 2)"]);
    let acc_catalog = accidents::catalog();
    let acc_schema = accidents::access_schema(&acc_catalog);
    let acc_query = accidents::parameterized_query(&acc_catalog)?;
    let answer = |r: Option<bea_core::specialize::Specialization>| match r {
        Some(s) => format!("{:?}", s.parameter_names),
        None => "not specializable".to_owned(),
    };
    qsp.row([
        "accidents: ages by $date/$district (Ex. 5.1)".to_owned(),
        "{date, district}".to_owned(),
        answer(specialize_cq(&acc_query, &acc_schema, 2, &spec_config)?),
    ]);

    let ec_catalog = ecommerce::catalog();
    let ec_schema = ecommerce::access_schema(&ec_catalog);
    for (label, query) in [
        (
            "e-commerce: orders of $uid on $day",
            ecommerce::orders_of_customer(&ec_catalog)?,
        ),
        (
            "e-commerce: products in $category of $brand",
            ecommerce::products_in_category(&ec_catalog)?,
        ),
        (
            "e-commerce: cities buying $brand at $price",
            ecommerce::customers_by_brand(&ec_catalog)?,
        ),
    ] {
        let params = format!(
            "{{{}}}",
            query
                .params()
                .iter()
                .map(|&v| query.var_name(v).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        );
        qsp.row([
            label.to_owned(),
            params,
            answer(specialize_cq(&query, &ec_schema, 2, &spec_config)?),
        ]);
    }
    qsp.print();

    // Proposition 5.4: a covering access schema makes every fully parameterized FO query
    // boundedly specializable.
    let fully = FirstOrderQuery::new(
        "AnyVehicle",
        ["v"],
        Formula::exists(["d", "a"], Formula::atom("Vehicle", ["v", "d", "a"])),
    )
    .with_params(["v", "d", "a"]);
    println!(
        "\nProposition 5.4: under ψ1–ψ4 (which do not cover the catalog) → {}; under a \
         covering schema → {}.",
        always_boundedly_specializable(&fully, &acc_schema, &acc_catalog),
        always_boundedly_specializable(
            &fully,
            &bea_core::access::AccessSchema::from_constraints([
                bea_core::access::AccessConstraint::new(
                    &acc_catalog,
                    "Accident",
                    &["aid"],
                    &["district", "date"],
                    1
                )?,
                bea_core::access::AccessConstraint::new(
                    &acc_catalog,
                    "Casualty",
                    &["cid"],
                    &["aid", "class", "vid"],
                    1
                )?,
                bea_core::access::AccessConstraint::new(
                    &acc_catalog,
                    "Vehicle",
                    &["vid"],
                    &["driver", "age"],
                    1
                )?,
            ]),
            &acc_catalog
        )
    );

    // Runtime of the specialized accident query, bounded vs naive, as |D| grows.
    println!("\nspecialized accident query Q(date = day-0001), bounded vs naive:\n");
    let mut table = TextTable::new([
        "|D| (tuples)",
        "answers",
        "bounded reads",
        "bounded time",
        "naive reads",
        "naive time",
    ]);
    for &target in &[25_000u64, 100_000, 400_000] {
        let config = accidents::AccidentsConfig::with_total_tuples(target, 5);
        let db = accidents::generate(&config)?;
        let concrete = instantiate(&acc_query, &[("date", accidents::date_value(1))])?;
        let plan = bounded_plan(&concrete, &acc_schema)?;
        let ((naive, naive_stats), naive_ms) = time_ms(|| eval_cq(&concrete, &db).unwrap());
        let indexed = IndexedDatabase::build(db, acc_schema.clone())?;
        let ((bounded, stats), bounded_ms) = time_ms(|| execute_plan(&plan, &indexed).unwrap());
        assert!(bounded.same_rows(&naive));
        table.row([
            indexed.size().to_string(),
            bounded.len().to_string(),
            stats.tuples_fetched.to_string(),
            fmt_ms(bounded_ms),
            naive_stats.tuples_scanned.to_string(),
            fmt_ms(naive_ms),
        ]);
    }
    table.print();

    // The specialization is generic: any valuation works, including ones not in the data.
    let odd = instantiate(
        &acc_query,
        &[
            ("date", Value::str("nonexistent-day")),
            ("district", Value::str("Atlantis")),
        ],
    )?;
    println!(
        "\ngenericity: Q(date = \"nonexistent-day\", district = \"Atlantis\") is still covered: {}",
        bea_core::cover::is_covered(&odd, &acc_schema)
    );
    Ok(())
}

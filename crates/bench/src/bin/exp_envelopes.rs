//! E5 — boundedly evaluable envelopes (Section 4): existence, approximation bounds and
//! the measured gaps on data.
//!
//! Paper reference points: Example 4.1 (Q1 has both envelopes, Q2 has none because it is
//! not bounded) and Example 4.5 (a 1-expansion obtained by splitting an unindexed atom).
//! The envelopes warrant |Qᵤ(D) − Q(D)| ≤ Nᵤ and |Q(D) − Qₗ(D)| ≤ Nₗ for constants
//! derived from the query and the access schema; we measure the actual gaps on growing
//! databases and check they stay within the derived bounds.
//!
//! Run with `cargo run --release -p bea-bench --bin exp_envelopes`.

use bea_bench::report::TextTable;
use bea_core::cover;
use bea_core::envelope::{lower_envelope_cq, upper_envelope_cq, EnvelopeConfig};
use bea_core::plan::bounded_plan;
use bea_core::value::Value;
use bea_engine::{eval_cq, execute_plan};
use bea_parser::{parse_access_schema, parse_catalog, parse_query};
use bea_storage::{Database, IndexedDatabase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E5 — envelopes: existence, derived bounds and measured gaps\n");
    let catalog = parse_catalog("relation R(a, b);")?;
    let schema = parse_access_schema(&catalog, "R(a -> b, 6);")?;
    let config = EnvelopeConfig::default();

    // Example 4.1.
    let q1 = parse_query(&catalog, "Q1(x) :- R(w, x), R(y, w), R(x, z), w = 1.")?;
    let q1 = q1.as_cq().unwrap().clone();
    let q2 = parse_query(&catalog, "Q2(x, y) :- R(w, x), R(y, w), w = 1.")?;
    let q2 = q2.as_cq().unwrap().clone();

    println!(
        "Q1 bounded? {}  covered? {}",
        cover::is_bounded(&q1, &schema),
        cover::is_covered(&q1, &schema)
    );
    println!(
        "Q2 bounded? {}  (Lemma 4.2: not bounded ⇒ no envelopes)\n",
        cover::is_bounded(&q2, &schema)
    );

    let upper = upper_envelope_cq(&q1, &schema, &config)?.expect("Q1 has an upper envelope");
    let lower =
        lower_envelope_cq(&q1, &schema, &catalog, 2, &config)?.expect("Q1 has a lower envelope");
    assert!(upper_envelope_cq(&q2, &schema, &config)?.is_none());
    assert!(lower_envelope_cq(&q2, &schema, &catalog, 2, &config)?.is_none());

    println!("upper envelope Qu: {}", upper.query);
    println!("lower envelope Ql: {}\n", lower.query);

    let nu = upper.approximation_bound(&schema, 1 << 20).unwrap();
    let input_report = cover::coverage(&q1, &schema);
    let nl = lower.approximation_bound(&input_report, &schema, 1 << 20);

    let mut table = TextTable::new([
        "|D|",
        "|Q1(D)|",
        "|Qu(D)|",
        "upper gap",
        "Nu (bound)",
        "|Ql(D)|",
        "lower gap",
        "Nl (bound)",
    ]);
    for &size in &[200usize, 2_000, 20_000] {
        let db = random_r_instance(&catalog, size, 6, 0xE5)?;
        let indexed = IndexedDatabase::build(db, schema.clone())?;
        assert!(indexed.satisfies_schema());
        let (exact, _) = eval_cq(&q1, indexed.database())?;
        let upper_plan = bounded_plan(&upper.query, &schema)?;
        let (upper_ans, _) = execute_plan(&upper_plan, &indexed)?;
        let lower_plan = bounded_plan(&lower.query, &schema)?;
        let (lower_ans, _) = execute_plan(&lower_plan, &indexed)?;

        assert!(lower_ans.row_set().is_subset(&exact.row_set()));
        assert!(exact.row_set().is_subset(&upper_ans.row_set()));
        let upper_gap = upper_ans.len() - exact.len();
        let lower_gap = exact.len() - lower_ans.len();
        assert!(upper_gap as u64 <= nu);
        assert!(lower_gap as u64 <= nl);
        table.row([
            indexed.size().to_string(),
            exact.len().to_string(),
            upper_ans.len().to_string(),
            upper_gap.to_string(),
            nu.to_string(),
            lower_ans.len().to_string(),
            lower_gap.to_string(),
            nl.to_string(),
        ]);
    }
    table.print();

    // Example 4.5: the split-based lower envelope.
    let catalog3 = parse_catalog("relation S(a, b, c);")?;
    let schema3 = parse_access_schema(&catalog3, "S(a -> b, 4); S(b -> c, 1);")?;
    let q = parse_query(&catalog3, "Q(x, y) :- S(1, x, y).")?;
    let q = q.as_cq().unwrap();
    let env = lower_envelope_cq(q, &schema3, &catalog3, 1, &config)?
        .expect("Example 4.5 has a 1-expansion lower envelope");
    println!(
        "\nExample 4.5: unindexed atom split into indexed copies → {} (split used: {})",
        env.query, env.used_split
    );
    Ok(())
}

/// A random R(a, b) instance with at most `fanout` distinct b-values per a-value, i.e.
/// satisfying R(a → b, fanout).
fn random_r_instance(
    catalog: &bea_core::schema::Catalog,
    rows: usize,
    fanout: u64,
    seed: u64,
) -> Result<Database, bea_core::error::Error> {
    let mut db = Database::new(catalog.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = (rows as u64 / fanout).max(4) as i64;
    for _ in 0..rows {
        let a = rng.gen_range(1..=keys);
        // b-values are drawn from the key range so that chains R(1, x), R(x, z) exist,
        // with at most `fanout` distinct b-values per a-value.
        let b = ((a + rng.gen_range(0..fanout as i64)) % keys) + 1;
        db.insert("R", vec![Value::Int(a), Value::Int(b)])?;
    }
    Ok(db)
}

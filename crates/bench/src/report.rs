//! Small helpers for printing experiment results as aligned text / markdown tables,
//! plus the machine-readable `BENCH_pipeline.json` perf record.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::time::Instant;

/// A simple column-aligned table accumulated row by row and printed at the end.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are formatted with `Display`).
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = widths
                .iter()
                .enumerate()
                .map(|(i, w)| format!("{:<w$}", cells.get(i).map(String::as_str).unwrap_or("")))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", dashes.join(" | ")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print the markdown rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// One scenario's entry in the pipeline perf record: how much data the plan touched,
/// its residency high-water mark, the executor's copy traffic, and a wall-clock figure.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Tuples fetched through index lookups (`AccessStats::tuples_fetched`).
    pub rows_fetched: u64,
    /// Peak rows concurrently resident (`AccessStats::peak_rows_resident`).
    pub peak_rows_resident: u64,
    /// Value clones performed moving rows between executor buffers
    /// (`AccessStats::values_cloned`) — deterministic for a given plan and database,
    /// which is what makes it CI-checkable.
    pub values_cloned: u64,
    /// Nanoseconds per execution, measured on the emitting machine (machine-dependent;
    /// recorded for trend reading, never compared by CI).
    pub ns_per_op: u64,
}

/// The `BENCH_pipeline.json` perf record: scenario name → [`BenchEntry`]. Written by
/// `exp_table1` and the `ablations` bench so the perf trajectory of the streaming
/// pipeline is recorded (and `values_cloned` regressions are caught) from PR 4 on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineBenchReport {
    /// Scenario entries in deterministic (sorted) order.
    pub scenarios: BTreeMap<String, BenchEntry>,
}

impl PipelineBenchReport {
    /// Add a scenario entry.
    pub fn insert(&mut self, scenario: impl Into<String>, entry: BenchEntry) {
        self.scenarios.insert(scenario.into(), entry);
    }

    /// Render as JSON (one scenario per line, keys sorted — diff-friendly).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"scenarios\": {\n");
        let lines: Vec<String> = self
            .scenarios
            .iter()
            .map(|(name, e)| {
                format!(
                    "    \"{name}\": {{\"rows_fetched\": {}, \"peak_rows_resident\": {}, \
                     \"values_cloned\": {}, \"ns_per_op\": {}}}",
                    e.rows_fetched, e.peak_rows_resident, e.values_cloned, e.ns_per_op
                )
            })
            .collect();
        out.push_str(&lines.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse the JSON produced by [`PipelineBenchReport::to_json`]. Tolerant of
    /// whitespace but not of structural changes — this reads our own format back, it
    /// is not a general JSON parser.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let mut report = PipelineBenchReport::default();
        for line in text.lines() {
            let line = line.trim();
            let Some((name_part, fields)) = line.split_once(": {") else {
                continue;
            };
            let name = name_part.trim().trim_matches('"');
            if name == "scenarios" || name.is_empty() {
                continue;
            }
            let field = |key: &str| -> Result<u64, String> {
                let pattern = format!("\"{key}\":");
                let start = fields
                    .find(&pattern)
                    .ok_or_else(|| format!("scenario `{name}` is missing `{key}`"))?
                    + pattern.len();
                let rest = &fields[start..];
                let digits: String = rest
                    .trim_start()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect();
                digits
                    .parse::<u64>()
                    .map_err(|_| format!("scenario `{name}`: `{key}` is not a number"))
            };
            report.insert(
                name,
                BenchEntry {
                    rows_fetched: field("rows_fetched")?,
                    peak_rows_resident: field("peak_rows_resident")?,
                    values_cloned: field("values_cloned")?,
                    ns_per_op: field("ns_per_op")?,
                },
            );
        }
        if report.scenarios.is_empty() {
            return Err("no scenario entries found".into());
        }
        Ok(report)
    }

    /// Compare this (fresh) report against a committed baseline: every baseline
    /// scenario must still exist, and its `values_cloned` must not exceed the baseline
    /// by more than `tolerance_percent`. Returns the list of violations (empty = pass).
    /// Only `values_cloned` is compared — it is deterministic; timing is not.
    pub fn regressions_against(
        &self,
        baseline: &PipelineBenchReport,
        tolerance_percent: u64,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        for (name, base) in &baseline.scenarios {
            match self.scenarios.get(name) {
                None => violations.push(format!("scenario `{name}` disappeared from the report")),
                Some(fresh) => {
                    let allowed = base.values_cloned + base.values_cloned * tolerance_percent / 100;
                    if fresh.values_cloned > allowed {
                        violations.push(format!(
                            "scenario `{name}`: field `values_cloned` regressed — fresh {} \
                             exceeds the committed baseline {} by more than \
                             {tolerance_percent}% (allowed up to {allowed})",
                            fresh.values_cloned, base.values_cloned
                        ));
                    }
                }
            }
        }
        violations
    }
}

/// Measure the wall-clock time of a closure, in milliseconds, returning its result.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64() * 1e3)
}

/// Format a millisecond figure compactly (`1.23 ms`, `456 µs`, `2.1 s`).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1_000.0 {
        format!("{:.2} s", ms / 1_000.0)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.0} µs", ms * 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = TextTable::new(["a", "b"]);
        assert!(t.is_empty());
        t.row([1, 2]);
        t.row([30, 4]);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.starts_with("| a "));
        assert!(md.contains("| 30 | 4 |"));
        assert!(md.lines().count() == 4);
    }

    #[test]
    fn bench_report_round_trips_and_checks_regressions() {
        let mut report = PipelineBenchReport::default();
        report.insert(
            "accidents_q0",
            BenchEntry {
                rows_fetched: 100,
                peak_rows_resident: 40,
                values_cloned: 2_000,
                ns_per_op: 123_456,
            },
        );
        report.insert(
            "parallel_q0_batch_6",
            BenchEntry {
                rows_fetched: 600,
                peak_rows_resident: 90,
                values_cloned: 16_000,
                ns_per_op: 999,
            },
        );
        let json = report.to_json();
        let parsed = PipelineBenchReport::parse_json(&json).unwrap();
        assert_eq!(parsed, report);

        // Within tolerance: +10% exactly passes.
        let mut fresh = report.clone();
        fresh
            .scenarios
            .get_mut("accidents_q0")
            .unwrap()
            .values_cloned = 2_200;
        assert!(fresh.regressions_against(&report, 10).is_empty());
        // Above tolerance: fails with a named violation.
        fresh
            .scenarios
            .get_mut("accidents_q0")
            .unwrap()
            .values_cloned = 2_201;
        let violations = fresh.regressions_against(&report, 10);
        assert_eq!(violations.len(), 1);
        // The violation names both the scenario and the regressing field explicitly.
        assert!(violations[0].contains("accidents_q0"));
        assert!(violations[0].contains("`values_cloned`"));
        assert!(violations[0].contains("2201"));
        assert!(violations[0].contains("2000"));
        // A disappeared scenario is a violation too; timing changes never are.
        let mut shrunk = report.clone();
        shrunk.scenarios.remove("parallel_q0_batch_6");
        shrunk.scenarios.get_mut("accidents_q0").unwrap().ns_per_op = 1;
        assert_eq!(shrunk.regressions_against(&report, 10).len(), 1);

        assert!(PipelineBenchReport::parse_json("{}").is_err());
        assert!(
            PipelineBenchReport::parse_json("{\"scenarios\": {\"x\": {\"nope\": 1}}}").is_err()
        );
    }

    #[test]
    fn timing_and_formatting() {
        let (value, ms) = time_ms(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(ms >= 0.0);
        assert_eq!(fmt_ms(2_500.0), "2.50 s");
        assert_eq!(fmt_ms(12.345), "12.35 ms");
        assert_eq!(fmt_ms(0.5), "500 µs");
    }
}

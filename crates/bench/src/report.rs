//! Small helpers for printing experiment results as aligned text / markdown tables.

use std::fmt::Display;
use std::time::Instant;

/// A simple column-aligned table accumulated row by row and printed at the end.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are formatted with `Display`).
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = widths
                .iter()
                .enumerate()
                .map(|(i, w)| format!("{:<w$}", cells.get(i).map(String::as_str).unwrap_or("")))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", dashes.join(" | ")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print the markdown rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// Measure the wall-clock time of a closure, in milliseconds, returning its result.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64() * 1e3)
}

/// Format a millisecond figure compactly (`1.23 ms`, `456 µs`, `2.1 s`).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1_000.0 {
        format!("{:.2} s", ms / 1_000.0)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.0} µs", ms * 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = TextTable::new(["a", "b"]);
        assert!(t.is_empty());
        t.row([1, 2]);
        t.row([30, 4]);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.starts_with("| a "));
        assert!(md.contains("| 30 | 4 |"));
        assert!(md.lines().count() == 4);
    }

    #[test]
    fn timing_and_formatting() {
        let (value, ms) = time_ms(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(ms >= 0.0);
        assert_eq!(fmt_ms(2_500.0), "2.50 s");
        assert_eq!(fmt_ms(12.345), "12.35 ms");
        assert_eq!(fmt_ms(0.5), "500 µs");
    }
}

//! Small helpers for printing experiment results as aligned text / markdown tables,
//! plus the machine-readable `BENCH_pipeline.json` perf record.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::time::Instant;

/// A simple column-aligned table accumulated row by row and printed at the end.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are formatted with `Display`).
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = widths
                .iter()
                .enumerate()
                .map(|(i, w)| format!("{:<w$}", cells.get(i).map(String::as_str).unwrap_or("")))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", dashes.join(" | ")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print the markdown rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// One scenario's entry in the pipeline perf record: how much data the plan touched,
/// its residency high-water mark, the executor's copy traffic, its probe-path buffer
/// demand, and a latency distribution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchEntry {
    /// Tuples fetched through index lookups (`AccessStats::tuples_fetched`).
    pub rows_fetched: u64,
    /// Peak rows concurrently resident (`AccessStats::peak_rows_resident`).
    pub peak_rows_resident: u64,
    /// Value clones performed moving rows between executor buffers
    /// (`AccessStats::values_cloned`) — deterministic for a given plan and database,
    /// which is what makes it CI-checkable.
    pub values_cloned: u64,
    /// Probe-path buffer-demand events (`AccessStats::allocs_per_probe`) —
    /// deterministic like `values_cloned`, and zero on the steady-state anchored
    /// fast path, so CI can hold the zero-allocation property.
    pub allocs_per_probe: u64,
    /// Posting rows served out of the session's cross-query fetch cache
    /// (`AccessStats::rows_served_from_cache`) — deterministic, and gated exactly
    /// like `values_cloned` so the warm leg of a cached-repeat scenario keeps
    /// serving from the hot tier instead of silently falling back to the store.
    pub rows_served_from_cache: u64,
    /// Median nanoseconds per execution on the emitting machine (machine-dependent;
    /// recorded for trend reading, never compared exactly by CI).
    pub ns_p50: u64,
    /// 99th-percentile nanoseconds per execution — the tail figure `--check` guards
    /// with a generous multiplicative budget (machines differ; order-of-magnitude
    /// blowups don't).
    pub ns_p99: u64,
}

/// The `BENCH_pipeline.json` perf record: scenario name → [`BenchEntry`]. Written by
/// `exp_table1` and the `ablations` bench so the perf trajectory of the streaming
/// pipeline is recorded (and `values_cloned` regressions are caught) from PR 4 on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineBenchReport {
    /// Scenario entries in deterministic (sorted) order.
    pub scenarios: BTreeMap<String, BenchEntry>,
}

impl PipelineBenchReport {
    /// Add a scenario entry.
    pub fn insert(&mut self, scenario: impl Into<String>, entry: BenchEntry) {
        self.scenarios.insert(scenario.into(), entry);
    }

    /// Render as JSON (one scenario per line, keys sorted — diff-friendly).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"scenarios\": {\n");
        let lines: Vec<String> = self
            .scenarios
            .iter()
            .map(|(name, e)| {
                format!(
                    "    \"{name}\": {{\"rows_fetched\": {}, \"peak_rows_resident\": {}, \
                     \"values_cloned\": {}, \"allocs_per_probe\": {}, \
                     \"rows_served_from_cache\": {}, \"ns_p50\": {}, \"ns_p99\": {}}}",
                    e.rows_fetched,
                    e.peak_rows_resident,
                    e.values_cloned,
                    e.allocs_per_probe,
                    e.rows_served_from_cache,
                    e.ns_p50,
                    e.ns_p99
                )
            })
            .collect();
        out.push_str(&lines.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse the JSON produced by [`PipelineBenchReport::to_json`]. Tolerant of
    /// whitespace but not of structural changes — this reads our own format back, it
    /// is not a general JSON parser.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let mut report = PipelineBenchReport::default();
        for line in text.lines() {
            let line = line.trim();
            let Some((name_part, fields)) = line.split_once(": {") else {
                continue;
            };
            let name = name_part.trim().trim_matches('"');
            if name == "scenarios" || name.is_empty() {
                continue;
            }
            let field = |key: &str| -> Result<u64, String> {
                let pattern = format!("\"{key}\":");
                let start = fields
                    .find(&pattern)
                    .ok_or_else(|| format!("scenario `{name}` is missing `{key}`"))?
                    + pattern.len();
                let rest = &fields[start..];
                let digits: String = rest
                    .trim_start()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect();
                digits
                    .parse::<u64>()
                    .map_err(|_| format!("scenario `{name}`: `{key}` is not a number"))
            };
            report.insert(
                name,
                BenchEntry {
                    rows_fetched: field("rows_fetched")?,
                    peak_rows_resident: field("peak_rows_resident")?,
                    values_cloned: field("values_cloned")?,
                    allocs_per_probe: field("allocs_per_probe")?,
                    rows_served_from_cache: field("rows_served_from_cache")?,
                    ns_p50: field("ns_p50")?,
                    ns_p99: field("ns_p99")?,
                },
            );
        }
        if report.scenarios.is_empty() {
            return Err("no scenario entries found".into());
        }
        Ok(report)
    }

    /// Compare this (fresh) report against a committed baseline on the deterministic
    /// counters: the scenario sets must match exactly (a scenario that disappeared
    /// *or* appeared without a committed baseline is a hard error — the record and
    /// the harness must never drift apart silently), and neither `values_cloned` nor
    /// `allocs_per_probe` may exceed its baseline by more than `tolerance_percent`.
    /// Returns the list of violations (empty = pass). Timing fields are never
    /// compared here — see [`PipelineBenchReport::tail_latency_regressions`].
    pub fn regressions_against(
        &self,
        baseline: &PipelineBenchReport,
        tolerance_percent: u64,
    ) -> Vec<String> {
        // The allowance a baseline of `base` grants. A zero baseline must allow
        // exactly zero: `0 + 0 * tol / 100 == 0`, so any fresh value above it is a
        // regression. Percentage slack that rounds up (or a `max(base, 1)` fudge)
        // would silently waive the zero-allocation guarantee the anchored fast path
        // is checked for — keep the rule integer-exact.
        let allowed = |base: u64| base + base * tolerance_percent / 100;
        let mut violations = Vec::new();
        for (name, base) in &baseline.scenarios {
            match self.scenarios.get(name) {
                None => violations.push(format!("scenario `{name}` disappeared from the report")),
                Some(fresh) => {
                    for (field, fresh_value, base_value) in [
                        ("values_cloned", fresh.values_cloned, base.values_cloned),
                        (
                            "allocs_per_probe",
                            fresh.allocs_per_probe,
                            base.allocs_per_probe,
                        ),
                        (
                            "rows_served_from_cache",
                            fresh.rows_served_from_cache,
                            base.rows_served_from_cache,
                        ),
                    ] {
                        if fresh_value > allowed(base_value) {
                            violations.push(format!(
                                "scenario `{name}`: field `{field}` regressed — fresh \
                                 {fresh_value} exceeds the committed baseline {base_value} by \
                                 more than {tolerance_percent}% (allowed up to {})",
                                allowed(base_value)
                            ));
                        }
                    }
                }
            }
        }
        // Symmetric drift: a scenario the harness now produces but the committed
        // record has never seen is unguarded — fail loudly instead of green-lighting
        // whatever numbers it happens to emit.
        for name in self.scenarios.keys() {
            if !baseline.scenarios.contains_key(name) {
                violations.push(format!(
                    "scenario `{name}` is missing from the committed baseline — \
                     regenerate and commit the perf record"
                ));
            }
        }
        violations
    }

    /// Gate the fresh report's tail latency against the committed baseline: scenario
    /// `s` fails when `fresh.ns_p99 > max(floor_ns, base.ns_p99 * budget_factor)`.
    /// The multiplicative budget absorbs machine-to-machine variance (the baseline
    /// was recorded elsewhere); the absolute floor keeps scenarios whose baseline
    /// p99 is tiny from failing on scheduler noise. Baselines with `ns_p99 == 0`
    /// (emitted by zero-iteration determinism-only runs) are skipped. Kept separate
    /// from [`PipelineBenchReport::regressions_against`] because timing is advisory
    /// on every field except this one budgeted tail check.
    pub fn tail_latency_regressions(
        &self,
        baseline: &PipelineBenchReport,
        budget_factor: u64,
        floor_ns: u64,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        for (name, base) in &baseline.scenarios {
            if base.ns_p99 == 0 {
                continue;
            }
            let Some(fresh) = self.scenarios.get(name) else {
                continue; // the set-drift check in `regressions_against` owns this
            };
            let budget = floor_ns.max(base.ns_p99.saturating_mul(budget_factor));
            if fresh.ns_p99 > budget {
                violations.push(format!(
                    "scenario `{name}`: tail latency blew the budget — fresh p99 {} ns \
                     exceeds max(floor {floor_ns} ns, baseline p99 {} ns × {budget_factor}) \
                     = {budget} ns",
                    fresh.ns_p99, base.ns_p99
                ));
            }
        }
        violations
    }
}

/// Measure the wall-clock time of a closure, in milliseconds, returning its result.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64() * 1e3)
}

/// Format a millisecond figure compactly (`1.23 ms`, `456 µs`, `2.1 s`).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1_000.0 {
        format!("{:.2} s", ms / 1_000.0)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.0} µs", ms * 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = TextTable::new(["a", "b"]);
        assert!(t.is_empty());
        t.row([1, 2]);
        t.row([30, 4]);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.starts_with("| a "));
        assert!(md.contains("| 30 | 4 |"));
        assert!(md.lines().count() == 4);
    }

    fn entry(values_cloned: u64, allocs_per_probe: u64) -> BenchEntry {
        BenchEntry {
            rows_fetched: 100,
            peak_rows_resident: 40,
            values_cloned,
            allocs_per_probe,
            rows_served_from_cache: 25,
            ns_p50: 123_456,
            ns_p99: 234_567,
        }
    }

    #[test]
    fn bench_report_round_trips_and_checks_regressions() {
        let mut report = PipelineBenchReport::default();
        report.insert("accidents_q0", entry(2_000, 12));
        report.insert("parallel_q0_batch_6", entry(16_000, 48));
        let json = report.to_json();
        let parsed = PipelineBenchReport::parse_json(&json).unwrap();
        assert_eq!(parsed, report);

        // Within tolerance: +10% exactly passes.
        let mut fresh = report.clone();
        fresh
            .scenarios
            .get_mut("accidents_q0")
            .unwrap()
            .values_cloned = 2_200;
        assert!(fresh.regressions_against(&report, 10).is_empty());
        // Above tolerance: fails with a named violation.
        fresh
            .scenarios
            .get_mut("accidents_q0")
            .unwrap()
            .values_cloned = 2_201;
        let violations = fresh.regressions_against(&report, 10);
        assert_eq!(violations.len(), 1);
        // The violation names both the scenario and the regressing field explicitly.
        assert!(violations[0].contains("accidents_q0"));
        assert!(violations[0].contains("`values_cloned`"));
        assert!(violations[0].contains("2201"));
        assert!(violations[0].contains("2000"));
        // `allocs_per_probe` is guarded with the same tolerance.
        let mut allocs = report.clone();
        allocs
            .scenarios
            .get_mut("parallel_q0_batch_6")
            .unwrap()
            .allocs_per_probe = 60;
        let violations = allocs.regressions_against(&report, 10);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("`allocs_per_probe`"));
        // `rows_served_from_cache` is a deterministic counter under the same gate:
        // the warm cached-repeat leg may not drift without a regenerated baseline.
        let mut cached = report.clone();
        cached
            .scenarios
            .get_mut("accidents_q0")
            .unwrap()
            .rows_served_from_cache = 100;
        let violations = cached.regressions_against(&report, 10);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("`rows_served_from_cache`"));
        // A disappeared scenario is a violation too; timing changes never are.
        let mut shrunk = report.clone();
        shrunk.scenarios.remove("parallel_q0_batch_6");
        shrunk.scenarios.get_mut("accidents_q0").unwrap().ns_p50 = 1;
        shrunk.scenarios.get_mut("accidents_q0").unwrap().ns_p99 = 1;
        assert_eq!(shrunk.regressions_against(&report, 10).len(), 1);

        assert!(PipelineBenchReport::parse_json("{}").is_err());
        assert!(
            PipelineBenchReport::parse_json("{\"scenarios\": {\"x\": {\"nope\": 1}}}").is_err()
        );
    }

    #[test]
    fn zero_baseline_allows_no_regression() {
        // The anchored fast path commits `allocs_per_probe: 0`; percentage tolerance
        // must grant a zero baseline zero slack, so baseline 0 → fresh 1 regresses.
        let mut baseline = PipelineBenchReport::default();
        baseline.insert("anchored_probe", entry(500, 0));
        let mut fresh = baseline.clone();
        assert!(fresh.regressions_against(&baseline, 10).is_empty());
        fresh
            .scenarios
            .get_mut("anchored_probe")
            .unwrap()
            .allocs_per_probe = 1;
        let violations = fresh.regressions_against(&baseline, 10);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("`allocs_per_probe`"));
        assert!(violations[0].contains("allowed up to 0"));
    }

    #[test]
    fn scenario_set_drift_is_flagged_in_both_directions() {
        // A fresh scenario with no committed baseline is as much drift as a
        // disappeared one — both mean the record and the harness no longer agree.
        let mut baseline = PipelineBenchReport::default();
        baseline.insert("old_scenario", entry(100, 0));
        let mut fresh = PipelineBenchReport::default();
        fresh.insert("old_scenario", entry(100, 0));
        fresh.insert("brand_new_scenario", entry(7, 3));
        let violations = fresh.regressions_against(&baseline, 10);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("brand_new_scenario"));
        assert!(violations[0].contains("missing from the committed baseline"));
        // And the reverse direction still fires.
        let empty = PipelineBenchReport::default();
        let violations = empty.regressions_against(&baseline, 10);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("disappeared"));
    }

    #[test]
    fn tail_latency_budget_gates_p99() {
        let mut baseline = PipelineBenchReport::default();
        let mut base_entry = entry(100, 0);
        base_entry.ns_p99 = 1_000_000; // 1 ms baseline tail
        baseline.insert("q", base_entry);
        // Untimed baseline entries (determinism-only runs emit ns_p99 = 0) are skipped.
        baseline.insert("untimed", entry(1, 0));
        baseline.scenarios.get_mut("untimed").unwrap().ns_p99 = 0;

        let mut fresh = baseline.clone();
        // Within budget: 25× of 1 ms with a 50 ms floor allows up to 50 ms.
        fresh.scenarios.get_mut("q").unwrap().ns_p99 = 40_000_000;
        assert!(fresh
            .tail_latency_regressions(&baseline, 25, 50_000_000)
            .is_empty());
        // The untimed entry never fails, however slow it measures now.
        fresh.scenarios.get_mut("untimed").unwrap().ns_p99 = u64::MAX;
        assert!(fresh
            .tail_latency_regressions(&baseline, 25, 50_000_000)
            .is_empty());
        // Over the budget: flagged with the arithmetic spelled out.
        fresh.scenarios.get_mut("q").unwrap().ns_p99 = 50_000_001;
        let violations = fresh.tail_latency_regressions(&baseline, 25, 50_000_000);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("`q`"));
        assert!(violations[0].contains("blew the budget"));
        // When the multiplied baseline exceeds the floor, it sets the budget.
        fresh.scenarios.get_mut("q").unwrap().ns_p99 = 24_000_000;
        assert!(fresh
            .tail_latency_regressions(&baseline, 25, 1_000)
            .is_empty());
        fresh.scenarios.get_mut("q").unwrap().ns_p99 = 25_000_001;
        assert_eq!(
            fresh.tail_latency_regressions(&baseline, 25, 1_000).len(),
            1
        );
    }

    #[test]
    fn timing_and_formatting() {
        let (value, ms) = time_ms(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(ms >= 0.0);
        assert_eq!(fmt_ms(2_500.0), "2.50 s");
        assert_eq!(fmt_ms(12.345), "12.35 ms");
        assert_eq!(fmt_ms(0.5), "500 µs");
    }
}

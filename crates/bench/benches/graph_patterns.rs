//! Criterion bench for E4: personalized graph pattern queries, bounded evaluation versus
//! conventional join evaluation, on degree-bounded social graphs of two sizes.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use bea_bench::scenarios::GraphScenario;
use bea_engine::{eval_cq, execute_plan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_graph_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_patterns");
    group.sample_size(20);
    for &persons in &[5_000u32, 20_000] {
        let scenario = GraphScenario::with_persons(persons, 9).expect("scenario builds");
        let size = scenario.indexed.size();

        group.bench_with_input(
            BenchmarkId::new("bounded_personalized", size),
            &scenario,
            |b, scenario| {
                b.iter(|| execute_plan(&scenario.plan, &scenario.indexed).expect("plan executes"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_personalized", size),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    eval_cq(&scenario.personalized, scenario.indexed.database())
                        .expect("naive evaluates")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_patterns);
criterion_main!(benches);

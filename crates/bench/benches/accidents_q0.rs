//! Criterion bench for E2 (Example 1.1): bounded evaluation of Q0 versus the full-scan
//! baseline at two database scales. The bounded plan's latency is expected to be
//! essentially independent of the scale; the baseline's grows with it.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use bea_bench::scenarios::AccidentsScenario;
use bea_engine::{eval_cq, execute_plan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_accidents_q0(c: &mut Criterion) {
    let mut group = c.benchmark_group("accidents_q0");
    group.sample_size(20);
    for &tuples in &[50_000u64, 200_000] {
        let scenario = AccidentsScenario::with_total_tuples(tuples, 42).expect("scenario builds");
        let size = scenario.indexed.size();

        group.bench_with_input(
            BenchmarkId::new("bounded_plan", size),
            &scenario,
            |b, scenario| {
                b.iter(|| execute_plan(&scenario.plan, &scenario.indexed).expect("plan executes"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_full_scan", size),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    eval_cq(&scenario.q0, scenario.indexed.database()).expect("naive evaluates")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_accidents_q0);
criterion_main!(benches);

//! Criterion bench for E1 (Table 1): the cost of the five analyses on growing chain
//! queries. CQP(CQ) is the PTIME effective syntax; the other analyses are
//! enumeration-based and grow much faster — the practical counterpart of the complexity
//! gaps in the paper's Table 1.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use bea_bench::families;
use bea_core::bounded::{analyze_cq, BoundedConfig};
use bea_core::cover;
use bea_core::envelope::{upper_envelope_cq, EnvelopeConfig};
use bea_core::reason::ReasonConfig;
use bea_core::specialize::{specialize_cq, SpecializeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_complexity");
    group.sample_size(20);

    for &n in &[3usize, 6, 9] {
        let catalog = families::chain_catalog(n);
        let schema = families::chain_schema(&catalog, 4);
        let covered = families::anchored_chain(&catalog, n).expect("family builds");
        let uncovered = families::unanchored_chain(&catalog, n).expect("family builds");
        let dangling = families::chain_with_dangling_atom(&catalog, n).expect("family builds");
        let union = families::chain_union_with_subsumed_branch(&catalog, n.min(5), 2)
            .expect("family builds");

        group.bench_with_input(BenchmarkId::new("CQP_cq_ptime", n), &n, |b, _| {
            b.iter(|| cover::coverage(&covered, &schema))
        });
        group.bench_with_input(BenchmarkId::new("BEP_analysis_covered", n), &n, |b, _| {
            b.iter(|| analyze_cq(&covered, &schema, &BoundedConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("BEP_analysis_uncovered", n), &n, |b, _| {
            b.iter(|| analyze_cq(&uncovered, &schema, &BoundedConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("CQP_ucq_subsumption", n), &n, |b, _| {
            b.iter(|| cover::ucq_coverage(&union, &schema, &ReasonConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("UEP_relaxation_search", n), &n, |b, _| {
            b.iter(|| upper_envelope_cq(&dangling, &schema, &EnvelopeConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("QSP_parameter_search", n), &n, |b, _| {
            b.iter(|| specialize_cq(&uncovered, &schema, 1, &SpecializeConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);

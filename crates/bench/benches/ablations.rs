//! Criterion bench for E7 — ablations of the design choices DESIGN.md calls out:
//!
//! * **effective syntax vs semantic reasoning** — the PTIME coverage check against the
//!   full bounded-evaluability analysis (with its satisfiability / rewrite machinery) on
//!   the same uncovered query: the reason the paper introduces covered queries at all;
//! * **`A`-equivalence rewrites on/off** — how much the rewrite search costs when it is
//!   enabled but cannot help;
//! * **reasoning budget** — the effect of the enumeration budget on `A`-containment
//!   checks (larger budgets admit more of the search space before giving up);
//! * **materialized vs streaming execution** — the same bounded plans run through the
//!   historical table-per-step executor and the streaming batch pipeline, on all three
//!   scenario families. Before timing, the bench prints the memory-residency comparison
//!   (`peak_rows_resident`): identical data access, lower high-water mark.
//! * **single-threaded vs parallel pipelines** — one exchange-lowered multi-pipeline
//!   plan (a batch of anchored Q0 branches) executed at 1, 2 and 4 worker threads.
//!   Before timing, the bench checks the invariants (identical output and data access
//!   at every thread count; the concurrent residency peak bounds the single-threaded
//!   one from above) and prints the pipeline/residency table. On a multi-core machine
//!   the 4-thread run is where the wall-clock win shows up; the access-side numbers
//!   are identical by construction, which is the point — parallelism scales the
//!   hardware, not the amount of data touched.

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use bea_bench::scenarios::{
    pipeline_bench_report, AccidentsScenario, EcommerceScenario, GraphScenario, ParallelScenario,
    ShardedScenario,
};
use bea_bench::{families, report::TextTable};
use bea_core::bounded::{analyze_cq, BoundedConfig};
use bea_core::cover;
use bea_core::plan::QueryPlan;
use bea_core::reason::containment::a_contained;
use bea_core::reason::ReasonConfig;
use bea_engine::{
    execute_physical_on, execute_physical_with_options, execute_plan_with_options, ExecOptions,
};
use bea_storage::{IndexedDatabase, Store};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);

    let n = 6;
    let catalog = families::chain_catalog(n);
    let schema = families::chain_schema(&catalog, 4);
    let uncovered = families::unanchored_chain(&catalog, n).expect("family builds");
    let covered = families::anchored_chain(&catalog, n).expect("family builds");

    // Effective syntax (PTIME) vs the full semantic analysis on an uncovered query.
    group.bench_function("coverage_check_only", |b| {
        b.iter(|| cover::coverage(&uncovered, &schema))
    });
    group.bench_function("full_bounded_analysis", |b| {
        b.iter(|| analyze_cq(&uncovered, &schema, &BoundedConfig::default()).unwrap())
    });

    // A-equivalence rewrites on/off.
    let with_rewrites = BoundedConfig {
        use_a_equivalence_removal: true,
        ..BoundedConfig::default()
    };
    let without_rewrites = BoundedConfig {
        use_a_equivalence_removal: false,
        ..BoundedConfig::default()
    };
    group.bench_function("analysis_with_a_equivalence_rewrites", |b| {
        b.iter(|| analyze_cq(&uncovered, &schema, &with_rewrites).unwrap())
    });
    group.bench_function("analysis_without_a_equivalence_rewrites", |b| {
        b.iter(|| analyze_cq(&uncovered, &schema, &without_rewrites).unwrap())
    });

    // Reasoning budget: containment of the covered chain in itself (a positive instance
    // that must sweep the full enumeration) under different budgets.
    for &budget in &[10_000u64, 100_000, 1_000_000] {
        let config = ReasonConfig::with_budget(budget);
        group.bench_with_input(
            BenchmarkId::new("a_containment_budget", budget),
            &budget,
            |b, _| {
                b.iter(|| {
                    // Ignore budget exhaustion: the point is the time spent.
                    let _ = a_contained(&covered, &covered, &schema, &config);
                })
            },
        );
    }
    group.finish();
}

/// Materialized vs streaming execution on the three scenario families. Prints the
/// residency comparison once, then times both strategies.
fn bench_execution_strategies(c: &mut Criterion) {
    let accidents = AccidentsScenario::with_total_tuples(20_000, 42).expect("scenario builds");
    let graph = GraphScenario::with_persons(500, 42).expect("scenario builds");
    let ecommerce = EcommerceScenario::with_customers(300, 42).expect("scenario builds");
    let cases: Vec<(&str, &QueryPlan, &IndexedDatabase)> = vec![
        ("accidents_q0", &accidents.plan, &accidents.indexed),
        ("graph_personalized", &graph.plan, &graph.indexed),
        ("ecommerce_orders", &ecommerce.plan, &ecommerce.indexed),
    ];

    let mut table = TextTable::new([
        "scenario",
        "db tuples",
        "shards",
        "tuples fetched",
        "peak resident (materialized)",
        "peak resident (streaming)",
        "values cloned (materialized)",
        "values cloned (streaming)",
    ]);
    for (name, plan, indexed) in &cases {
        let (streamed, streaming_stats) =
            execute_plan_with_options(plan, indexed, &ExecOptions::new()).expect("plan executes");
        let (materialized, materialized_stats) =
            execute_plan_with_options(plan, indexed, &ExecOptions::materialized())
                .expect("plan executes");
        assert!(
            streamed.same_rows(&materialized),
            "{name}: strategies disagree"
        );
        assert!(
            streaming_stats.same_data_access(&materialized_stats),
            "{name}: strategies read different data"
        );
        assert!(
            streaming_stats.peak_rows_resident < materialized_stats.peak_rows_resident,
            "{name}: streaming peak {} not below materialized peak {}",
            streaming_stats.peak_rows_resident,
            materialized_stats.peak_rows_resident
        );
        // The columnar pipeline's reason to exist: it moves strictly fewer values than
        // the row-at-a-time executor on every scenario family.
        assert!(
            streaming_stats.values_cloned < materialized_stats.values_cloned,
            "{name}: columnar pipeline cloned {} values, row path {}",
            streaming_stats.values_cloned,
            materialized_stats.values_cloned
        );
        table.row([
            name.to_string(),
            indexed.size().to_string(),
            "1".to_owned(),
            streaming_stats.tuples_fetched.to_string(),
            materialized_stats.peak_rows_resident.to_string(),
            streaming_stats.peak_rows_resident.to_string(),
            materialized_stats.values_cloned.to_string(),
            streaming_stats.values_cloned.to_string(),
        ]);
    }
    println!("\nmemory residency, materialized vs streaming (identical data access):\n");
    table.print();
    println!();

    // Maintain the machine-readable perf record alongside the printed table. Bench
    // binaries run with the package directory as cwd, so resolve the workspace root
    // explicitly; and refresh only the deterministic fields — the ns_p50/ns_p99
    // figures belong to exp_table1's timed runs and must survive a bench run
    // unchanged.
    let mut report = pipeline_bench_report(0).expect("scenarios build");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    if let Ok(baseline) = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| bea_bench::report::PipelineBenchReport::parse_json(&text))
    {
        for (name, entry) in report.scenarios.iter_mut() {
            if let Some(base) = baseline.scenarios.get(name) {
                entry.ns_p50 = base.ns_p50;
                entry.ns_p99 = base.ns_p99;
            }
        }
    }
    std::fs::write(path, report.to_json()).expect("record written");
    println!("(BENCH_pipeline.json deterministic fields refreshed)\n");

    let mut group = c.benchmark_group("execution_strategies");
    group.sample_size(20);
    for (name, plan, indexed) in &cases {
        group.bench_with_input(BenchmarkId::new("materialized", name), name, |b, _| {
            b.iter(|| {
                execute_plan_with_options(plan, indexed, &ExecOptions::materialized())
                    .expect("plan executes")
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming", name), name, |b, _| {
            b.iter(|| {
                execute_plan_with_options(plan, indexed, &ExecOptions::new())
                    .expect("plan executes")
            })
        });
    }
    group.finish();
}

/// Single-threaded vs parallel pipeline execution on the multi-pipeline batch-of-Q0
/// scenario. Prints the pipeline decomposition and residency comparison once, then
/// times the same physical plan at 1, 2 and 4 worker threads.
fn bench_parallel_pipelines(c: &mut Criterion) {
    let scenario = ParallelScenario::with_branches(6, 20_000, 42).expect("scenario builds");
    let dag = scenario.physical.pipeline_dag();

    let (single, single_stats) = execute_physical_with_options(
        &scenario.physical,
        &scenario.indexed,
        &ExecOptions::new().with_threads(1),
    )
    .expect("plan executes");
    let (parallel, parallel_stats) = execute_physical_with_options(
        &scenario.physical,
        &scenario.indexed,
        &ExecOptions::new().with_threads(4),
    )
    .expect("plan executes");
    assert_eq!(
        single.rows(),
        parallel.rows(),
        "thread count changed output"
    );
    assert!(
        single_stats.same_data_access(&parallel_stats),
        "thread count changed data access"
    );
    assert!(
        parallel_stats.peak_rows_resident >= single_stats.peak_rows_resident,
        "concurrent peak {} understates the single-threaded peak {}",
        parallel_stats.peak_rows_resident,
        single_stats.peak_rows_resident
    );
    // Copy traffic is a function of the plan, not the schedule: every worker gathers
    // the same batches whatever the interleaving.
    assert_eq!(
        single_stats.values_cloned, parallel_stats.values_cloned,
        "thread count changed the copy traffic"
    );
    // So is the probe-path buffer demand: which keys miss which lookup caches depends
    // on the operators, not on which worker runs them.
    assert_eq!(
        single_stats.allocs_per_probe, parallel_stats.allocs_per_probe,
        "thread count changed the probe-path buffer demand"
    );

    let mut table = TextTable::new([
        "scenario",
        "db tuples",
        "pipelines",
        "parallel width",
        "tuples fetched",
        "peak resident (1 thread)",
        "peak resident (4 threads)",
    ]);
    table.row([
        "q0_batch_6".to_owned(),
        scenario.indexed.size().to_string(),
        dag.len().to_string(),
        dag.parallel_width().to_string(),
        single_stats.tuples_fetched.to_string(),
        single_stats.peak_rows_resident.to_string(),
        parallel_stats.peak_rows_resident.to_string(),
    ]);
    println!("\nparallel pipelines, identical data access at every thread count:\n");
    table.print();
    println!();

    let mut group = c.benchmark_group("parallel_pipelines");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        let options = ExecOptions::new().with_threads(threads);
        group.bench_with_input(BenchmarkId::new("q0_batch_6", threads), &threads, |b, _| {
            b.iter(|| {
                execute_physical_with_options(&scenario.physical, &scenario.indexed, &options)
                    .expect("plan executes")
            })
        });
    }
    group.finish();
}

/// Unsharded vs sharded execution of the anchored Q0 plan: the same logical plan,
/// fanned out over 1 vs 4 index-partition shards, at 4 worker threads. Before timing,
/// the bench checks the sharding invariants — identical answers, identical data-access
/// totals and copy traffic at every shard count, per-shard counts summing to the total
/// — and prints the shards table. Sharding buys pipeline-DAG width (and keeps each
/// fetch local to one index partition); what is read never changes.
fn bench_sharded_execution(c: &mut Criterion) {
    let unsharded = ShardedScenario::with_shards(1, 20_000, 42).expect("scenario builds");
    let sharded = ShardedScenario::with_shards(4, 20_000, 42).expect("scenario builds");
    let options = ExecOptions::new().with_threads(4);

    let (base_table, base_stats) = execute_physical_on(
        &unsharded.physical,
        Store::Sharded(&unsharded.sharded),
        &options,
    )
    .expect("plan executes");
    let (sharded_table_out, sharded_stats) = execute_physical_on(
        &sharded.physical,
        Store::Sharded(&sharded.sharded),
        &options,
    )
    .expect("plan executes");
    assert!(
        sharded_table_out.same_rows(&base_table),
        "shard count changed the answers"
    );
    assert!(
        sharded_stats.same_data_access(&base_stats),
        "shard count changed the data access"
    );
    assert_eq!(
        sharded_stats.values_cloned, base_stats.values_cloned,
        "shard count changed the copy traffic"
    );
    assert_eq!(
        sharded_stats.allocs_per_probe, base_stats.allocs_per_probe,
        "shard count changed the probe-path buffer demand"
    );
    assert_eq!(
        sharded_stats.rows_fetched_by_shard.values().sum::<u64>(),
        sharded_stats.tuples_fetched,
        "per-shard counts must sum to the fetch total"
    );
    assert!(
        sharded.physical.pipeline_dag().parallel_width() >= 4,
        "sharded DAG lost its parallel width"
    );

    let mut table = TextTable::new([
        "scenario",
        "shards",
        "pipelines",
        "parallel width",
        "tuples fetched",
        "values cloned",
        "probe allocs",
    ]);
    for (scenario, stats) in [(&unsharded, &base_stats), (&sharded, &sharded_stats)] {
        let dag = scenario.physical.pipeline_dag();
        table.row([
            "sharded_q0".to_owned(),
            scenario.shards.to_string(),
            dag.len().to_string(),
            dag.parallel_width().to_string(),
            stats.tuples_fetched.to_string(),
            stats.values_cloned.to_string(),
            stats.allocs_per_probe.to_string(),
        ]);
    }
    println!("\nsharded execution, identical data access at every shard count:\n");
    table.print();
    println!();

    let mut group = c.benchmark_group("sharded_execution");
    group.sample_size(20);
    for scenario in [&unsharded, &sharded] {
        group.bench_with_input(
            BenchmarkId::new("sharded_q0", scenario.shards),
            &scenario.shards,
            |b, _| {
                b.iter(|| {
                    execute_physical_on(
                        &scenario.physical,
                        Store::Sharded(&scenario.sharded),
                        &options,
                    )
                    .expect("plan executes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ablations,
    bench_execution_strategies,
    bench_parallel_pipelines,
    bench_sharded_execution
);
criterion_main!(benches);

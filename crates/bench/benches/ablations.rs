//! Criterion bench for E7 — ablations of the design choices DESIGN.md calls out:
//!
//! * **effective syntax vs semantic reasoning** — the PTIME coverage check against the
//!   full bounded-evaluability analysis (with its satisfiability / rewrite machinery) on
//!   the same uncovered query: the reason the paper introduces covered queries at all;
//! * **`A`-equivalence rewrites on/off** — how much the rewrite search costs when it is
//!   enabled but cannot help;
//! * **reasoning budget** — the effect of the enumeration budget on `A`-containment
//!   checks (larger budgets admit more of the search space before giving up).

#![allow(missing_docs)] // criterion_group! expands to undocumented items

use bea_bench::families;
use bea_core::bounded::{analyze_cq, BoundedConfig};
use bea_core::cover;
use bea_core::reason::containment::a_contained;
use bea_core::reason::ReasonConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);

    let n = 6;
    let catalog = families::chain_catalog(n);
    let schema = families::chain_schema(&catalog, 4);
    let uncovered = families::unanchored_chain(&catalog, n).expect("family builds");
    let covered = families::anchored_chain(&catalog, n).expect("family builds");

    // Effective syntax (PTIME) vs the full semantic analysis on an uncovered query.
    group.bench_function("coverage_check_only", |b| {
        b.iter(|| cover::coverage(&uncovered, &schema))
    });
    group.bench_function("full_bounded_analysis", |b| {
        b.iter(|| analyze_cq(&uncovered, &schema, &BoundedConfig::default()).unwrap())
    });

    // A-equivalence rewrites on/off.
    let with_rewrites = BoundedConfig {
        use_a_equivalence_removal: true,
        ..BoundedConfig::default()
    };
    let without_rewrites = BoundedConfig {
        use_a_equivalence_removal: false,
        ..BoundedConfig::default()
    };
    group.bench_function("analysis_with_a_equivalence_rewrites", |b| {
        b.iter(|| analyze_cq(&uncovered, &schema, &with_rewrites).unwrap())
    });
    group.bench_function("analysis_without_a_equivalence_rewrites", |b| {
        b.iter(|| analyze_cq(&uncovered, &schema, &without_rewrites).unwrap())
    });

    // Reasoning budget: containment of the covered chain in itself (a positive instance
    // that must sweep the full enumeration) under different budgets.
    for &budget in &[10_000u64, 100_000, 1_000_000] {
        let config = ReasonConfig::with_budget(budget);
        group.bench_with_input(
            BenchmarkId::new("a_containment_budget", budget),
            &budget,
            |b, _| {
                b.iter(|| {
                    // Ignore budget exhaustion: the point is the time spent.
                    let _ = a_contained(&covered, &covered, &schema, &config);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

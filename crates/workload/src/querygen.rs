//! Random conjunctive-query generation.
//!
//! The coverage-rate experiment reproduces the shape of the paper's finding that "77% of
//! conjunctive queries are boundedly evaluable under a set of 84 simple access
//! constraints" on the accidents data: we generate a workload of random CQs over a
//! catalog and measure what fraction is covered as the constraint set grows.
//!
//! The generator produces join-style queries in the spirit of the paper's personalized
//! searches: a few atoms chained by joins, some positions *anchored* by constants (an
//! anchored position is preferentially one that some access constraint can key on, which
//! is how real workloads are written against indexed data), and a small output tuple.

use bea_core::access::AccessSchema;
use bea_core::error::Result;
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::query::term::Arg;
use bea_core::schema::Catalog;
use bea_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random query generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryGenConfig {
    /// Minimum number of relation atoms per query.
    pub min_atoms: usize,
    /// Maximum number of relation atoms per query.
    pub max_atoms: usize,
    /// Probability that a generated query is *anchored*: its first atom has a constant on
    /// an attribute that some access constraint can key on (mirroring personalized
    /// searches, which start from a known value).
    pub anchor_probability: f64,
    /// Probability that an atom position reuses an already-introduced variable (a join)
    /// rather than a fresh one.
    pub join_probability: f64,
    /// Probability that a non-anchor position is additionally constrained to a constant.
    pub constant_probability: f64,
    /// Maximum number of free (output) variables.
    pub max_free_vars: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            min_atoms: 1,
            max_atoms: 3,
            anchor_probability: 0.85,
            join_probability: 0.85,
            constant_probability: 0.10,
            max_free_vars: 2,
            seed: 0x9E7,
        }
    }
}

/// Generate one random conjunctive query.
///
/// `schema_hint`, when given, steers anchor constants towards attributes that appear on
/// the key side (`X`) of some constraint — without it anchors land on arbitrary
/// attributes.
pub fn random_cq(
    catalog: &Catalog,
    schema_hint: Option<&AccessSchema>,
    config: &QueryGenConfig,
    rng: &mut StdRng,
    name: &str,
) -> Result<ConjunctiveQuery> {
    random_cq_impl(catalog, schema_hint, config, rng, name, None)
}

/// A constant chooser: given a relation name, an attribute position and the RNG, produce
/// the constant to place there.
type ConstantPicker<'a> = &'a dyn Fn(&str, usize, &mut StdRng) -> Value;

/// Shared implementation: `pick_constant`, when given, supplies the constant placed at a
/// (relation, attribute position); otherwise a generic pool is used.
fn random_cq_impl(
    catalog: &Catalog,
    schema_hint: Option<&AccessSchema>,
    config: &QueryGenConfig,
    rng: &mut StdRng,
    name: &str,
    pick_constant: Option<ConstantPicker<'_>>,
) -> Result<ConjunctiveQuery> {
    let constant_at = |relation: &str, position: usize, rng: &mut StdRng| -> Value {
        match pick_constant {
            Some(pick) => pick(relation, position, rng),
            None => random_constant(rng),
        }
    };
    let relations: Vec<_> = catalog.relations().collect();
    assert!(!relations.is_empty(), "catalog must declare relations");
    let num_atoms = rng.gen_range(config.min_atoms..=config.max_atoms.max(config.min_atoms));

    let mut builder = ConjunctiveQuery::builder(name);
    // All variables introduced so far, and the ones introduced per attribute name —
    // joins preferentially reuse a variable introduced at an equally named attribute
    // (foreign-key style joins, which is how real workloads over such schemas are
    // written: Casualty.aid joins Accident.aid, Casualty.vid joins Vehicle.vid, …).
    let mut vars: Vec<String> = Vec::new();
    let mut vars_by_attr: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    let mut var_counter = 0usize;

    let anchored = rng.gen_bool(config.anchor_probability.clamp(0.0, 1.0));

    for atom_index in 0..num_atoms {
        let relation = relations[rng.gen_range(0..relations.len())];
        // Which position should carry the anchor constant for the first atom?
        let anchor_position = if anchored && atom_index == 0 {
            let keyed_positions: Vec<usize> = schema_hint
                .map(|schema| {
                    schema
                        .constraints_for(relation.name())
                        .flat_map(|(_, c)| c.x().to_vec())
                        .collect()
                })
                .unwrap_or_default();
            if keyed_positions.is_empty() {
                Some(rng.gen_range(0..relation.arity()))
            } else {
                Some(keyed_positions[rng.gen_range(0..keyed_positions.len())])
            }
        } else {
            None
        };

        let mut args: Vec<Arg> = Vec::with_capacity(relation.arity());
        for position in 0..relation.arity() {
            if Some(position) == anchor_position {
                args.push(Arg::Const(constant_at(relation.name(), position, rng)));
                continue;
            }
            let attr = relation.attr_name(position).unwrap_or("attr").to_owned();
            let join = rng.gen_bool(config.join_probability.clamp(0.0, 1.0));
            let same_attr_vars = vars_by_attr.get(&attr);
            let var = match same_attr_vars {
                Some(candidates) if join && !candidates.is_empty() => {
                    candidates[rng.gen_range(0..candidates.len())].clone()
                }
                _ if join && !vars.is_empty() && rng.gen_bool(0.2) => {
                    // Occasionally join on an arbitrary variable (a "weird" join, which
                    // keeps some queries outside the covered fragment).
                    vars[rng.gen_range(0..vars.len())].clone()
                }
                _ => {
                    let fresh = format!("{attr}_{var_counter}");
                    var_counter += 1;
                    vars.push(fresh.clone());
                    vars_by_attr.entry(attr).or_default().push(fresh.clone());
                    fresh
                }
            };
            if rng.gen_bool(config.constant_probability.clamp(0.0, 1.0)) {
                builder = builder.eq(
                    Arg::Var(var.clone()),
                    Arg::Const(constant_at(relation.name(), position, rng)),
                );
            }
            args.push(Arg::Var(var));
        }
        builder = builder.atom(relation.name(), args);
    }

    // Output variables: up to max_free_vars of the introduced variables.
    let num_free = rng.gen_range(0..=config.max_free_vars.min(vars.len()));
    let mut head: Vec<Arg> = Vec::new();
    let mut pool = vars.clone();
    for _ in 0..num_free {
        let pick = pool.remove(rng.gen_range(0..pool.len()));
        head.push(Arg::Var(pick));
    }
    builder = builder.head(head);
    builder.build(catalog)
}

/// Generate a reproducible workload of `count` random queries.
pub fn random_workload(
    catalog: &Catalog,
    schema_hint: Option<&AccessSchema>,
    count: usize,
    config: &QueryGenConfig,
) -> Result<Vec<ConjunctiveQuery>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..count)
        .map(|i| random_cq(catalog, schema_hint, config, &mut rng, &format!("W{i}")))
        .collect()
}

/// Generate a workload whose anchor and filter constants are drawn from the *actual
/// column values* of a database instance, so the queries have non-trivial answers when
/// executed (used by the end-to-end and property tests, and by the graph/accident
/// experiments).
pub fn random_workload_from_db(
    catalog: &Catalog,
    schema_hint: Option<&AccessSchema>,
    database: &bea_storage::Database,
    count: usize,
    config: &QueryGenConfig,
) -> Result<Vec<ConjunctiveQuery>> {
    // Pool of observed values per (relation, attribute position).
    let mut pools: std::collections::HashMap<(String, usize), Vec<Value>> =
        std::collections::HashMap::new();
    for relation in database.relations() {
        for row in relation.rows().iter().take(2_000) {
            for (position, value) in row.iter().enumerate() {
                let pool = pools
                    .entry((relation.name().to_owned(), position))
                    .or_default();
                if pool.len() < 512 {
                    pool.push(value.clone());
                }
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let query = random_cq_with_pool(
            catalog,
            schema_hint,
            config,
            &mut rng,
            &format!("W{i}"),
            &|relation, position, rng: &mut StdRng| match pools
                .get(&(relation.to_owned(), position))
            {
                Some(pool) if !pool.is_empty() => pool[rng.gen_range(0..pool.len())].clone(),
                _ => random_constant(rng),
            },
        )?;
        out.push(query);
    }
    Ok(out)
}

/// Like [`random_cq`], but constants are produced by `pick_constant(relation, position)`.
fn random_cq_with_pool(
    catalog: &Catalog,
    schema_hint: Option<&AccessSchema>,
    config: &QueryGenConfig,
    rng: &mut StdRng,
    name: &str,
    pick_constant: &dyn Fn(&str, usize, &mut StdRng) -> Value,
) -> Result<ConjunctiveQuery> {
    // Re-use the main generator by temporarily generating with placeholder constants and
    // then re-sampling them is messy; instead the main generator is parameterized below.
    random_cq_impl(catalog, schema_hint, config, rng, name, Some(pick_constant))
}

/// A constant drawn from a small mixed pool (the analysis never looks at the values, only
/// at which positions are constant).
fn random_constant(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.5) {
        Value::Int(rng.gen_range(0..50))
    } else {
        Value::str(format!("k{}", rng.gen_range(0..20)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accidents;
    use bea_core::cover;

    #[test]
    fn workload_is_reproducible_and_well_formed() {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = QueryGenConfig::default();
        let w1 = random_workload(&catalog, Some(&schema), 50, &config).unwrap();
        let w2 = random_workload(&catalog, Some(&schema), 50, &config).unwrap();
        assert_eq!(w1.len(), 50);
        for (a, b) in w1.iter().zip(&w2) {
            assert_eq!(a.to_string(), b.to_string());
        }
        for q in &w1 {
            assert!(q.atoms().len() >= config.min_atoms);
            assert!(q.atoms().len() <= config.max_atoms);
            assert!(q.arity() <= config.max_free_vars);
        }
    }

    #[test]
    fn anchored_workloads_have_reasonable_coverage_under_the_schema() {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = QueryGenConfig {
            seed: 2024,
            ..QueryGenConfig::default()
        };
        let workload = random_workload(&catalog, Some(&schema), 200, &config).unwrap();
        let covered = workload
            .iter()
            .filter(|q| cover::is_covered(q, &schema))
            .count();
        let fraction = covered as f64 / workload.len() as f64;
        // The paper reports 77% for the (hand-written) real workload under 84 mined
        // constraints; the synthetic anchored workload under just ψ1–ψ4 should land in a
        // broadly similar regime — well above a trivial floor, below 100%.
        assert!(fraction > 0.3, "covered fraction too low: {fraction}");
        assert!(fraction < 1.0, "covered fraction suspiciously perfect");
    }

    #[test]
    fn coverage_increases_with_more_constraints() {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = QueryGenConfig {
            seed: 7,
            ..QueryGenConfig::default()
        };
        let workload = random_workload(&catalog, Some(&schema), 150, &config).unwrap();
        let covered_with =
            |s: &AccessSchema| workload.iter().filter(|q| cover::is_covered(q, s)).count();
        let empty = AccessSchema::new();
        let partial = AccessSchema::from_constraints(schema.constraints()[..2].to_vec());
        let full_count = covered_with(&schema);
        assert!(covered_with(&empty) <= covered_with(&partial));
        assert!(covered_with(&partial) <= full_count);
        assert!(covered_with(&empty) < full_count);
    }

    #[test]
    fn unanchored_workloads_are_rarely_covered() {
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let config = QueryGenConfig {
            anchor_probability: 0.0,
            constant_probability: 0.0,
            seed: 5,
            ..QueryGenConfig::default()
        };
        let workload = random_workload(&catalog, Some(&schema), 100, &config).unwrap();
        let covered = workload
            .iter()
            .filter(|q| cover::is_covered(q, &schema))
            .count();
        // Without anchors, only boolean or trivially-satisfiable queries squeak through.
        assert!(covered < workload.len() / 2);
    }
}

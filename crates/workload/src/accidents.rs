//! The UK road-accidents workload of Example 1.1.
//!
//! The real dataset [data.gov.uk road-accidents] has ~7.5M accidents, ~10M casualties and
//! ~13.5M vehicles and satisfies the access constraints ψ1–ψ4 (at most 610 accidents per
//! day, at most 192 casualties per accident, `aid` and `vid` keys). The generator below
//! produces databases with the same schema and the same cardinality profile at any scale,
//! which is all the bounded-evaluability analysis and the experiments depend on.

use bea_core::access::{AccessConstraint, AccessSchema};
use bea_core::error::Result;
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::query::term::Arg;
use bea_core::schema::Catalog;
use bea_core::value::Value;
use bea_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The maximum number of accidents per day stated by ψ1.
pub const MAX_ACCIDENTS_PER_DAY: u64 = 610;
/// The maximum number of casualties (vehicle references) per accident stated by ψ2.
pub const MAX_CASUALTIES_PER_ACCIDENT: u64 = 192;

/// The relational schema of Example 1.1.
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("Accident", ["aid", "district", "date"])
        .expect("static schema");
    c.declare("Casualty", ["cid", "aid", "class", "vid"])
        .expect("static schema");
    c.declare("Vehicle", ["vid", "driver", "age"])
        .expect("static schema");
    c
}

/// The access schema ψ1–ψ4 of Example 1.1.
pub fn access_schema(catalog: &Catalog) -> AccessSchema {
    AccessSchema::from_constraints([
        AccessConstraint::new(
            catalog,
            "Accident",
            &["date"],
            &["aid"],
            MAX_ACCIDENTS_PER_DAY,
        )
        .expect("static constraint"),
        AccessConstraint::new(
            catalog,
            "Casualty",
            &["aid"],
            &["vid"],
            MAX_CASUALTIES_PER_ACCIDENT,
        )
        .expect("static constraint"),
        AccessConstraint::new(catalog, "Accident", &["aid"], &["district", "date"], 1)
            .expect("static constraint"),
        AccessConstraint::new(catalog, "Vehicle", &["vid"], &["driver", "age"], 1)
            .expect("static constraint"),
    ])
}

/// Configuration of the accidents generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccidentsConfig {
    /// Number of days covered by the dataset (the real data spans 1979–2005, ~9_800 days).
    pub num_days: u32,
    /// Average number of accidents per day (must stay ≤ 610 to satisfy ψ1; the real data
    /// averages ~770k accidents over ~9_800 days ≈ 280/day).
    pub avg_accidents_per_day: u32,
    /// Average number of casualties per accident (the paper notes accidents involve ~2
    /// vehicles on average; must stay well below 192 to satisfy ψ2).
    pub avg_casualties_per_accident: u32,
    /// Number of distinct districts.
    pub num_districts: u32,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl Default for AccidentsConfig {
    fn default() -> Self {
        Self {
            num_days: 50,
            avg_accidents_per_day: 200,
            avg_casualties_per_accident: 2,
            num_districts: 30,
            seed: 0xACC1DE,
        }
    }
}

impl AccidentsConfig {
    /// A configuration scaled so the generated database has roughly `total_tuples` tuples
    /// (split across the three relations in the same ratio as the real data).
    pub fn with_total_tuples(total_tuples: u64, seed: u64) -> Self {
        // Each accident contributes 1 Accident + ~2 Casualty + ~2 Vehicle tuples.
        let accidents = (total_tuples / 5).max(1);
        let avg_per_day = 300u64;
        let num_days = (accidents / avg_per_day).max(1) as u32;
        Self {
            num_days,
            avg_accidents_per_day: avg_per_day as u32,
            avg_casualties_per_accident: 2,
            num_districts: 40,
            seed,
        }
    }
}

/// The textual form of day number `d` (a pseudo-date such as `"day-0042"`).
pub fn date_value(day: u32) -> Value {
    Value::str(format!("day-{day:04}"))
}

/// The textual form of district number `d`. District 0 is `"Queen's Park"`, matching the
/// query of Example 1.1.
pub fn district_value(district: u32) -> Value {
    if district == 0 {
        Value::str("Queen's Park")
    } else {
        Value::str(format!("district-{district:03}"))
    }
}

/// Generate an accidents database satisfying ψ1–ψ4.
pub fn generate(config: &AccidentsConfig) -> Result<Database> {
    let catalog = catalog();
    let mut db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut aid: i64 = 0;
    let mut cid: i64 = 0;
    let mut vid: i64 = 0;
    let per_day_cap = MAX_ACCIDENTS_PER_DAY as u32;
    let per_accident_cap = MAX_CASUALTIES_PER_ACCIDENT as u32;

    for day in 0..config.num_days {
        // Accidents on this day: uniform in [avg/2, 3·avg/2], capped by ψ1.
        let avg = config.avg_accidents_per_day.max(1);
        let count = rng
            .gen_range(avg.div_ceil(2)..=avg + avg / 2)
            .min(per_day_cap);
        for _ in 0..count {
            aid += 1;
            let district = rng.gen_range(0..config.num_districts.max(1));
            db.insert(
                "Accident",
                vec![Value::Int(aid), district_value(district), date_value(day)],
            )?;

            // Casualties / vehicles of this accident: at least 1, average ~avg_casualties.
            let c_avg = config.avg_casualties_per_accident.max(1);
            let casualties = rng.gen_range(1..=(2 * c_avg).max(1)).min(per_accident_cap);
            for _ in 0..casualties {
                cid += 1;
                vid += 1;
                let class = rng.gen_range(1..=3);
                db.insert(
                    "Casualty",
                    vec![
                        Value::Int(cid),
                        Value::Int(aid),
                        Value::Int(class),
                        Value::Int(vid),
                    ],
                )?;
                let age = rng.gen_range(17..=90);
                db.insert(
                    "Vehicle",
                    vec![
                        Value::Int(vid),
                        Value::str(format!("driver-{vid}")),
                        Value::Int(age),
                    ],
                )?;
            }
        }
    }
    Ok(db)
}

/// The query Q0 of Example 1.1 for a concrete district and day.
pub fn q0(catalog: &Catalog, district: &Value, date: &Value) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("Q0")
        .head(["age"])
        .atom(
            "Accident",
            [
                Arg::var("aid"),
                Arg::Const(district.clone()),
                Arg::Const(date.clone()),
            ],
        )
        .atom("Casualty", ["cid", "aid", "class", "vid"])
        .atom("Vehicle", ["vid", "driver", "age"])
        .build(catalog)
}

/// The parameterized query of Example 5.1: like Q0 but with `date` and `district` left as
/// parameters to be instantiated by the user.
pub fn parameterized_query(catalog: &Catalog) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("Q")
        .head(["age"])
        .atom("Accident", ["aid", "district", "date"])
        .atom("Casualty", ["cid", "aid", "class", "vid"])
        .atom("Vehicle", ["vid", "driver", "age"])
        .params(["date", "district"])
        .build(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::cover;
    use bea_storage::IndexedDatabase;

    #[test]
    fn generated_data_satisfies_the_access_schema() {
        let config = AccidentsConfig {
            num_days: 5,
            avg_accidents_per_day: 20,
            avg_casualties_per_accident: 2,
            num_districts: 5,
            seed: 7,
        };
        let db = generate(&config).unwrap();
        assert!(db.size() > 100);
        let schema = access_schema(db.catalog());
        let idb = IndexedDatabase::build(db, schema).unwrap();
        assert!(idb.satisfies_schema());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = AccidentsConfig {
            num_days: 3,
            avg_accidents_per_day: 10,
            avg_casualties_per_accident: 2,
            num_districts: 4,
            seed: 42,
        };
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a.size(), b.size());
        assert_eq!(
            a.relation("Vehicle").unwrap().rows(),
            b.relation("Vehicle").unwrap().rows()
        );
        let other = generate(&AccidentsConfig { seed: 43, ..config }).unwrap();
        assert_ne!(
            a.relation("Vehicle").unwrap().rows(),
            other.relation("Vehicle").unwrap().rows()
        );
    }

    #[test]
    fn q0_is_covered_and_parameterized_query_is_not() {
        let c = catalog();
        let schema = access_schema(&c);
        let q0 = q0(&c, &district_value(0), &date_value(1)).unwrap();
        assert!(cover::is_covered(&q0, &schema));
        let q = parameterized_query(&c).unwrap();
        assert!(!cover::is_covered(&q, &schema));
        assert_eq!(q.params().len(), 2);
    }

    #[test]
    fn scaling_helper_hits_the_requested_size_roughly() {
        let config = AccidentsConfig::with_total_tuples(10_000, 1);
        let db = generate(&config).unwrap();
        let size = db.size();
        assert!(size > 4_000, "got {size}");
        assert!(size < 30_000, "got {size}");
    }

    #[test]
    fn district_and_date_values() {
        assert_eq!(district_value(0), Value::str("Queen's Park"));
        assert_eq!(district_value(3), Value::str("district-003"));
        assert_eq!(date_value(7), Value::str("day-0007"));
    }
}

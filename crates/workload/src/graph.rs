//! A social-graph workload for personalized ("Graph Search") pattern queries.
//!
//! The introduction of the paper reports that 60% of graph pattern queries on real-life
//! Web graphs are boundedly evaluable under simple access constraints, and that bounded
//! evaluation beats conventional subgraph-isomorphism evaluation by orders of magnitude —
//! the canonical example being *"find me all my friends in NYC who like cycling"*, which
//! only needs data around the designated person.
//!
//! We encode graphs relationally (`Person`, `Friend`, `Likes`) and pattern queries as
//! conjunctive queries, so the same bounded-evaluation machinery applies. The access
//! constraints are degree bounds: a person has at most `max_degree` friends, at most
//! `max_likes` liked tags, and exactly one home city.

use bea_core::access::{AccessConstraint, AccessSchema};
use bea_core::error::Result;
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::query::term::Arg;
use bea_core::schema::Catalog;
use bea_core::value::Value;
use bea_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The relational encoding of the social graph.
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("Person", ["pid", "city"]).expect("static schema");
    c.declare("Friend", ["pid", "fid"]).expect("static schema");
    c.declare("Likes", ["pid", "tag"]).expect("static schema");
    c
}

/// Configuration of the social-graph generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphConfig {
    /// Number of persons (nodes).
    pub num_persons: u32,
    /// Maximum out-degree of the friendship relation (the degree bound of the access
    /// schema).
    pub max_degree: u32,
    /// Average out-degree (≤ `max_degree`).
    pub avg_degree: u32,
    /// Number of distinct cities.
    pub num_cities: u32,
    /// Number of distinct interest tags.
    pub num_tags: u32,
    /// Maximum number of tags per person.
    pub max_likes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            num_persons: 1_000,
            max_degree: 50,
            avg_degree: 10,
            num_cities: 20,
            num_tags: 50,
            max_likes: 8,
            seed: 0x50C1A1,
        }
    }
}

/// The access schema: degree bounds plus key constraints.
pub fn access_schema(catalog: &Catalog, config: &GraphConfig) -> AccessSchema {
    AccessSchema::from_constraints([
        AccessConstraint::new(catalog, "Person", &["pid"], &["city"], 1).expect("static"),
        AccessConstraint::new(
            catalog,
            "Friend",
            &["pid"],
            &["fid"],
            u64::from(config.max_degree),
        )
        .expect("static"),
        AccessConstraint::new(
            catalog,
            "Likes",
            &["pid"],
            &["tag"],
            u64::from(config.max_likes),
        )
        .expect("static"),
    ])
}

/// The textual form of city number `i`; city 0 is `"NYC"` to match the motivating query.
pub fn city_value(i: u32) -> Value {
    if i == 0 {
        Value::str("NYC")
    } else {
        Value::str(format!("city-{i:03}"))
    }
}

/// The textual form of tag number `i`; tag 0 is `"cycling"`.
pub fn tag_value(i: u32) -> Value {
    if i == 0 {
        Value::str("cycling")
    } else {
        Value::str(format!("tag-{i:03}"))
    }
}

/// Generate a social graph satisfying the degree-bound access schema.
///
/// Friendships follow a skewed (preferential-attachment-like) target distribution so the
/// graph has hubs, but the *out*-degree — what the access constraint bounds — is capped
/// at `max_degree`.
pub fn generate(config: &GraphConfig) -> Result<Database> {
    let catalog = catalog();
    let mut db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(config.seed);

    for pid in 0..config.num_persons {
        let city = rng.gen_range(0..config.num_cities.max(1));
        db.insert("Person", vec![Value::Int(i64::from(pid)), city_value(city)])?;

        // Interests: between 0 and max_likes distinct tags, skewed towards low tag ids.
        let num_likes = rng.gen_range(0..=config.max_likes);
        let mut tags: Vec<u32> = Vec::new();
        for _ in 0..num_likes {
            let r: f64 = rng.gen::<f64>();
            let tag = ((r * r) * f64::from(config.num_tags.max(1))) as u32;
            if !tags.contains(&tag) {
                tags.push(tag);
            }
        }
        for tag in tags {
            db.insert("Likes", vec![Value::Int(i64::from(pid)), tag_value(tag)])?;
        }

        // Friendships: out-degree uniform in [0, 2·avg], capped at max_degree; targets
        // skewed towards low person ids (hubs).
        let degree = rng
            .gen_range(0..=(2 * config.avg_degree).max(1))
            .min(config.max_degree);
        let mut friends: Vec<u32> = Vec::new();
        for _ in 0..degree {
            let r: f64 = rng.gen::<f64>();
            let fid = ((r * r) * f64::from(config.num_persons)) as u32;
            if fid != pid && !friends.contains(&fid) {
                friends.push(fid);
            }
        }
        for fid in friends {
            db.insert(
                "Friend",
                vec![Value::Int(i64::from(pid)), Value::Int(i64::from(fid))],
            )?;
        }
    }
    Ok(db)
}

/// The personalized pattern query of the introduction: *"find all friends of `me` living
/// in `city` who like `tag`"* — boundedly evaluable once `me` is fixed.
pub fn personalized_query(
    catalog: &Catalog,
    me: i64,
    city: &Value,
    tag: &Value,
) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("Friends")
        .head(["f"])
        .atom("Friend", [Arg::val(Value::Int(me)), Arg::var("f")])
        .atom("Person", [Arg::var("f"), Arg::Const(city.clone())])
        .atom("Likes", [Arg::var("f"), Arg::Const(tag.clone())])
        .build(catalog)
}

/// The same pattern with `me` as a *parameter* (the "$me" of Graph Search): not boundedly
/// evaluable on its own, boundedly specializable by instantiating `me`.
pub fn parameterized_pattern(
    catalog: &Catalog,
    city: &Value,
    tag: &Value,
) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("FriendsOf")
        .head(["f"])
        .atom("Friend", [Arg::var("me"), Arg::var("f")])
        .atom("Person", [Arg::var("f"), Arg::Const(city.clone())])
        .atom("Likes", [Arg::var("f"), Arg::Const(tag.clone())])
        .params(["me"])
        .build(catalog)
}

/// A *global* pattern query with no personal anchor: every pair of friends who both like
/// `tag`. Not boundedly evaluable under the degree-bound schema (its output grows with
/// the graph), used as the negative control in the experiments.
pub fn global_pattern(catalog: &Catalog, tag: &Value) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("Pairs")
        .head(["p", "f"])
        .atom("Friend", ["p", "f"])
        .atom("Likes", [Arg::var("p"), Arg::Const(tag.clone())])
        .atom("Likes", [Arg::var("f"), Arg::Const(tag.clone())])
        .build(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::cover;
    use bea_core::specialize::{specialize_cq, SpecializeConfig};
    use bea_storage::IndexedDatabase;

    fn small_config() -> GraphConfig {
        GraphConfig {
            num_persons: 200,
            max_degree: 20,
            avg_degree: 5,
            num_cities: 5,
            num_tags: 10,
            max_likes: 4,
            seed: 11,
        }
    }

    #[test]
    fn generated_graph_satisfies_schema() {
        let config = small_config();
        let db = generate(&config).unwrap();
        let schema = access_schema(db.catalog(), &config);
        assert!(db.size() > 200);
        let idb = IndexedDatabase::build(db, schema).unwrap();
        assert!(idb.satisfies_schema());
    }

    #[test]
    fn personalized_query_is_covered_global_is_not() {
        let c = catalog();
        let config = small_config();
        let schema = access_schema(&c, &config);
        let personalized = personalized_query(&c, 3, &city_value(0), &tag_value(0)).unwrap();
        assert!(cover::is_covered(&personalized, &schema));

        let global = global_pattern(&c, &tag_value(0)).unwrap();
        assert!(!cover::is_covered(&global, &schema));
        assert!(!cover::is_bounded(&global, &schema));
    }

    #[test]
    fn parameterized_pattern_specializes_with_me() {
        let c = catalog();
        let config = small_config();
        let schema = access_schema(&c, &config);
        let q = parameterized_pattern(&c, &city_value(0), &tag_value(0)).unwrap();
        assert!(!cover::is_covered(&q, &schema));
        let spec = specialize_cq(&q, &schema, 1, &SpecializeConfig::default())
            .unwrap()
            .expect("instantiating `me` makes the pattern bounded");
        assert_eq!(spec.parameter_names, vec!["me".to_owned()]);
    }

    #[test]
    fn deterministic_generation() {
        let config = small_config();
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn value_helpers() {
        assert_eq!(city_value(0), Value::str("NYC"));
        assert_eq!(tag_value(0), Value::str("cycling"));
        assert_eq!(city_value(2), Value::str("city-002"));
        assert_eq!(tag_value(3), Value::str("tag-003"));
    }
}

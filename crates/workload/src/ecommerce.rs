//! An e-commerce workload with parameterized queries.
//!
//! Section 5 of the paper motivates bounded query specialization with e-commerce systems:
//! queries ship with parameters (price range, make of a product, the current user) that
//! are instantiated before execution. This workload provides a product/order/user schema,
//! a generator whose cardinalities match the access schema, and a family of parameterized
//! queries of varying "difficulty" (how many parameters must be instantiated before the
//! query becomes covered).

use bea_core::access::{AccessConstraint, AccessSchema};
use bea_core::error::Result;
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::schema::Catalog;
use bea_core::value::Value;
use bea_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum number of products per category enforced by the generator and promised by the
/// access schema.
pub const MAX_PRODUCTS_PER_CATEGORY: u64 = 400;
/// Maximum number of orders per user.
pub const MAX_ORDERS_PER_USER: u64 = 60;

/// The e-commerce schema.
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("Product", ["pid", "category", "brand", "price"])
        .expect("static schema");
    c.declare("Orders", ["oid", "uid", "pid", "day"])
        .expect("static schema");
    c.declare("Customer", ["uid", "city"])
        .expect("static schema");
    c
}

/// The access schema: key constraints on every id plus bounded "per category" and "per
/// user" lookups.
pub fn access_schema(catalog: &Catalog) -> AccessSchema {
    AccessSchema::from_constraints([
        AccessConstraint::new(
            catalog,
            "Product",
            &["pid"],
            &["category", "brand", "price"],
            1,
        )
        .expect("static"),
        AccessConstraint::new(
            catalog,
            "Product",
            &["category"],
            &["pid"],
            MAX_PRODUCTS_PER_CATEGORY,
        )
        .expect("static"),
        AccessConstraint::new(catalog, "Orders", &["oid"], &["uid", "pid", "day"], 1)
            .expect("static"),
        AccessConstraint::new(catalog, "Orders", &["uid"], &["oid"], MAX_ORDERS_PER_USER)
            .expect("static"),
        AccessConstraint::new(catalog, "Customer", &["uid"], &["city"], 1).expect("static"),
    ])
}

/// Configuration of the e-commerce generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcommerceConfig {
    /// Number of customers.
    pub num_customers: u32,
    /// Number of product categories.
    pub num_categories: u32,
    /// Products per category (capped by [`MAX_PRODUCTS_PER_CATEGORY`]).
    pub products_per_category: u32,
    /// Average orders per customer (capped by [`MAX_ORDERS_PER_USER`]).
    pub avg_orders_per_customer: u32,
    /// Number of distinct cities.
    pub num_cities: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EcommerceConfig {
    fn default() -> Self {
        Self {
            num_customers: 500,
            num_categories: 20,
            products_per_category: 50,
            avg_orders_per_customer: 10,
            num_cities: 15,
            seed: 0xECC0,
        }
    }
}

/// Generate an e-commerce database satisfying the access schema.
pub fn generate(config: &EcommerceConfig) -> Result<Database> {
    let catalog = catalog();
    let mut db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let products_per_category = config
        .products_per_category
        .min(MAX_PRODUCTS_PER_CATEGORY as u32);
    let mut pid: i64 = 0;
    let mut product_ids: Vec<i64> = Vec::new();
    for category in 0..config.num_categories {
        for _ in 0..products_per_category {
            pid += 1;
            product_ids.push(pid);
            let brand = rng.gen_range(0..50);
            let price = rng.gen_range(1..=2_000);
            db.insert(
                "Product",
                vec![
                    Value::Int(pid),
                    Value::str(format!("category-{category:03}")),
                    Value::str(format!("brand-{brand:02}")),
                    Value::Int(price),
                ],
            )?;
        }
    }

    let mut oid: i64 = 0;
    for uid in 0..config.num_customers {
        let city = rng.gen_range(0..config.num_cities.max(1));
        db.insert(
            "Customer",
            vec![
                Value::Int(i64::from(uid)),
                Value::str(format!("city-{city:03}")),
            ],
        )?;
        let orders = rng
            .gen_range(0..=(2 * config.avg_orders_per_customer).max(1))
            .min(MAX_ORDERS_PER_USER as u32);
        for _ in 0..orders {
            oid += 1;
            let product = product_ids[rng.gen_range(0..product_ids.len())];
            let day = rng.gen_range(0..365);
            db.insert(
                "Orders",
                vec![
                    Value::Int(oid),
                    Value::Int(i64::from(uid)),
                    Value::Int(product),
                    Value::Int(day),
                ],
            )?;
        }
    }
    Ok(db)
}

/// "Prices of the products a given customer ordered" with the customer as a parameter:
/// covered as soon as `uid` is instantiated (one-parameter specialization).
pub fn orders_of_customer(catalog: &Catalog) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("OrdersOf")
        .head(["price"])
        .atom("Orders", ["oid", "uid", "pid", "day"])
        .atom("Product", ["pid", "category", "brand", "price"])
        .params(["uid", "day"])
        .build(catalog)
}

/// "Products of a category with their price" with the category as a parameter.
pub fn products_in_category(catalog: &Catalog) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("InCategory")
        .head(["pid", "price"])
        .atom("Product", ["pid", "category", "brand", "price"])
        .params(["category", "brand"])
        .build(catalog)
}

/// "Cities of customers who ordered a product of a given brand": *not* boundedly
/// specializable under the access schema — there is no index keyed on `brand`, and no
/// choice of parameters repairs that. Used as the negative control of the QSP experiment.
pub fn customers_by_brand(catalog: &Catalog) -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::builder("ByBrand")
        .head(["city"])
        .atom("Product", ["pid", "category", "brand", "price"])
        .atom("Orders", ["oid", "uid", "pid", "day"])
        .atom("Customer", ["uid", "city"])
        .params(["brand", "price"])
        .build(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::cover;
    use bea_core::specialize::{specialize_cq, SpecializeConfig};
    use bea_storage::IndexedDatabase;

    fn small_config() -> EcommerceConfig {
        EcommerceConfig {
            num_customers: 50,
            num_categories: 5,
            products_per_category: 10,
            avg_orders_per_customer: 5,
            num_cities: 4,
            seed: 3,
        }
    }

    #[test]
    fn generated_data_satisfies_schema() {
        let db = generate(&small_config()).unwrap();
        let schema = access_schema(db.catalog());
        assert!(db.size() > 100);
        let idb = IndexedDatabase::build(db, schema).unwrap();
        assert!(idb.satisfies_schema());
    }

    #[test]
    fn orders_of_customer_specializes_with_one_parameter() {
        let c = catalog();
        let schema = access_schema(&c);
        let q = orders_of_customer(&c).unwrap();
        assert!(!cover::is_covered(&q, &schema));
        let spec = specialize_cq(&q, &schema, 2, &SpecializeConfig::default())
            .unwrap()
            .expect("uid instantiation suffices");
        assert_eq!(spec.parameter_names, vec!["uid".to_owned()]);
    }

    #[test]
    fn products_in_category_specializes() {
        let c = catalog();
        let schema = access_schema(&c);
        let q = products_in_category(&c).unwrap();
        let spec = specialize_cq(&q, &schema, 1, &SpecializeConfig::default())
            .unwrap()
            .expect("category instantiation suffices");
        assert_eq!(spec.parameter_names, vec!["category".to_owned()]);
    }

    #[test]
    fn customers_by_brand_cannot_be_specialized() {
        let c = catalog();
        let schema = access_schema(&c);
        let q = customers_by_brand(&c).unwrap();
        assert!(specialize_cq(&q, &schema, 2, &SpecializeConfig::default())
            .unwrap()
            .is_none());
    }
}

//! # bea-workload — synthetic data and query generators
//!
//! The paper's experimental claims are made on datasets we cannot ship (the UK
//! road-accident database, real-life Web graphs, production e-commerce queries). This
//! crate builds synthetic substitutes that preserve what matters for bounded
//! evaluability: the schemas, the cardinality profiles behind the access constraints, and
//! the shapes of the query workloads. `DESIGN.md` documents each substitution.
//!
//! * [`accidents`] — the UK road-accidents workload of Example 1.1 (`Accident`,
//!   `Casualty`, `Vehicle`; constraints ψ1–ψ4; query `Q0` and its parameterized form of
//!   Example 5.1).
//! * [`graph`] — a social-graph workload for the "Graph Search" personalized queries the
//!   introduction cites (degree-bounded friendship graph, persons with cities, likes).
//! * [`ecommerce`] — a product/order workload with parameterized queries, used by the
//!   query-specialization experiment.
//! * [`querygen`] — a random conjunctive-query generator over any catalog, used by the
//!   coverage-rate experiment (what fraction of a workload is covered by a constraint
//!   set of a given size).

pub mod accidents;
pub mod ecommerce;
pub mod graph;
pub mod querygen;

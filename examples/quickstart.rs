//! Quickstart: declare a schema, an access schema and a query as text, check bounded
//! evaluability, and answer the query by accessing a bounded amount of data.
//!
//! Run with `cargo run --example quickstart`.

use bea::core::bounded::{analyze_cq, BoundedConfig, BoundedVerdict};
use bea::core::plan::bounded_plan;
use bea::engine::{eval_cq, execute_plan, execute_plan_with_options, ExecOptions};
use bea::parser::{parse_access_schema, parse_catalog, parse_query};
use bea::storage::{Database, IndexedDatabase};
use bea_core::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The relational schema (Example 1.1 of the paper).
    let catalog = parse_catalog(
        "relation Accident(aid, district, date);
         relation Casualty(cid, aid, class, vid);
         relation Vehicle(vid, driver, age);",
    )?;

    // 2. The access schema ψ1–ψ4: cardinality constraints, each backed by an index.
    let schema = parse_access_schema(
        &catalog,
        "Accident(date -> aid, 610);
         Casualty(aid -> vid, 192);
         Accident(aid -> district, date, 1);
         Vehicle(vid -> driver, age, 1);",
    )?;
    println!("access schema:\n{}\n", schema.display_with(&catalog));

    // 3. The query Q0: ages of drivers involved in an accident in Queen's Park on a day.
    let q0 = parse_query(
        &catalog,
        r#"Q0(age) :- Accident(aid, "Queen's Park", "1/5/2005"),
                      Casualty(cid, aid, class, vid),
                      Vehicle(vid, driver, age)."#,
    )?;
    let q0 = q0.as_cq().expect("a single rule is a CQ").clone();
    println!("query: {q0}\n");

    // 4. Bounded evaluability analysis: Q0 is covered by ψ1–ψ4.
    match analyze_cq(&q0, &schema, &BoundedConfig::default())? {
        BoundedVerdict::Covered(report) => {
            println!(
                "Q0 is covered: at most {} answer tuples on any database satisfying the schema",
                report.output_bound(&schema, 1_000_000).unwrap()
            );
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    // 5. A boundedly evaluable plan, and a miniature database to run it on.
    let plan = bounded_plan(&q0, &schema)?;
    println!("\n{plan}");

    let mut db = Database::new(catalog.clone());
    db.extend(
        "Accident",
        [
            vec![
                Value::int(1),
                Value::str("Queen's Park"),
                Value::str("1/5/2005"),
            ],
            vec![Value::int(2), Value::str("Leith"), Value::str("1/5/2005")],
        ],
    )?;
    db.extend(
        "Casualty",
        [
            vec![
                Value::int(10),
                Value::int(1),
                Value::int(0),
                Value::int(100),
            ],
            vec![
                Value::int(11),
                Value::int(1),
                Value::int(1),
                Value::int(101),
            ],
            vec![
                Value::int(12),
                Value::int(2),
                Value::int(0),
                Value::int(102),
            ],
        ],
    )?;
    db.extend(
        "Vehicle",
        [
            vec![Value::int(100), Value::str("alice"), Value::int(34)],
            vec![Value::int(101), Value::str("bob"), Value::int(52)],
            vec![Value::int(102), Value::str("carol"), Value::int(45)],
        ],
    )?;

    // The baseline scans everything; the bounded plan only touches what the indices return.
    let (naive_answer, naive_stats) = eval_cq(&q0, &db)?;
    let indexed = IndexedDatabase::build(db, schema)?;
    assert!(indexed.satisfies_schema());
    let (bounded_answer, bounded_stats) = execute_plan(&plan, &indexed)?;

    println!("bounded answer:\n{bounded_answer}");
    assert!(bounded_answer.same_rows(&naive_answer));
    println!("bounded evaluation: {bounded_stats}");
    println!("naive evaluation:   {naive_stats}");

    // 6. The streaming executor can run independent pipelines on worker threads
    //    (ExecOptions::with_threads; the default resolves to BEA_THREADS or the
    //    machine's parallelism). Whatever the thread count, a bounded plan touches
    //    exactly the same data — parallelism scales the hardware, not the access bound.
    let (parallel_answer, parallel_stats) =
        execute_plan_with_options(&plan, &indexed, &ExecOptions::new().with_threads(4))?;
    assert!(parallel_answer.same_rows(&bounded_answer));
    assert!(parallel_stats.same_data_access(&bounded_stats));
    println!("parallel (4 threads) reads the same data: {parallel_stats}");
    Ok(())
}

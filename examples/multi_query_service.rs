//! Multi-query service: one `Session` serves many concurrently submitted queries
//! against one shared store, with fetch-bound admission control.
//!
//! The paper's central property — every covered query's worst-case fetch count is
//! known *before execution* from its bounded plan — turns admission control into a
//! static verdict: the session prices each submission with a `CostTicket` and
//! accepts, queues, or rejects it against an aggregate fetch budget. A rejection is
//! exact and deterministic, not a timeout.
//!
//! The same API backs the `bead` daemon / `beactl` client pair (`cargo run
//! --release -p bead --bin bead`, then `beactl query '…'` over the Unix socket).
//!
//! Run with `cargo run --example multi_query_service`.

use bea::core::plan::bounded_plan;
use bea::engine::{Rejection, Session, SessionConfig, SharedStore, SubmitError};
use bea::parser::parse_query;
use bea::storage::IndexedDatabase;
use bea::workload::accidents::{access_schema, generate, AccidentsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One shared store: the synthetic accidents workload (ψ1–ψ4 indexed),
    //    loaded once and served to every query. `SharedStore` is the cheaply
    //    clonable handle the session hands to its worker pool.
    let config = AccidentsConfig::with_total_tuples(20_000, 0xBEAD);
    let db = generate(&config)?;
    let schema = access_schema(db.catalog());
    let catalog = db.catalog().clone();
    let store = SharedStore::from(IndexedDatabase::build(db, schema.clone())?);

    // 2. A mixed batch: anchored point lookups (fetch bound 1 via ψ3) and the
    //    Q0 join chain, whose bound is priced from the schema's cardinalities.
    let mut plans = Vec::new();
    for aid in 1..=4 {
        let rule = format!("Cheap{aid}(d) :- Accident(x, d, t), x = {aid}.");
        let query = parse_query(&catalog, &rule)?;
        plans.push(bounded_plan(query.as_cq().expect("single rule"), &schema)?);
    }
    let q0 = parse_query(
        &catalog,
        r#"Q0(age) :- Accident(aid, "Queen's Park", "day-0001"),
                      Casualty(cid, aid, class, vid),
                      Vehicle(vid, driver, age)."#,
    )?;
    let q0 = bounded_plan(q0.as_cq().expect("single rule"), &schema)?;
    let q0_bound = q0.cost(&schema, store.store().size()).max_fetched_tuples;
    println!("Q0 prices at a worst-case fetch of {q0_bound} tuples\n");
    plans.push(q0);

    // 3. An unlimited session: every query is admitted; one worker pool
    //    interleaves their pipelines and morsels. Each submitter gets its own
    //    handle and waits for its own table — isolation per query, shared store.
    let session = Session::new(store.clone(), SessionConfig::new().with_threads(4));
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let session = &session;
                scope.spawn(move || -> Result<_, Box<SubmitError>> {
                    let handle = session.submit(plan)?;
                    let bound = handle.ticket().fetch_bound;
                    let (table, stats) = handle.wait().map_err(SubmitError::Invalid)?;
                    Ok((
                        plan.query_name().to_owned(),
                        bound,
                        table.rows().len(),
                        stats,
                    ))
                })
            })
            .collect();
        for handle in handles {
            let (name, bound, rows, stats) = handle.join().expect("submitter thread")?;
            println!("{name:8} fetch_bound={bound:<8} rows={rows:<4} {stats}");
        }
        Ok(())
    })?;
    let report = session.admission_stats();
    println!("\nunlimited session: {}", describe(&report));
    session.shutdown();

    // 4. A budgeted session: the aggregate fetch budget admits the anchored
    //    lookups and statically rejects Q0 — same verdict on every run, decided
    //    from the cost ticket alone, before any data is touched.
    let budget = q0_bound - 1;
    let session = Session::new(
        store,
        SessionConfig::new()
            .with_threads(4)
            .with_fetch_budget(budget),
    );
    for plan in &plans {
        match session.submit(plan) {
            Ok(handle) => {
                let bound = handle.ticket().fetch_bound;
                let (table, _) = handle.wait()?;
                println!(
                    "ADMIT  {:8} fetch_bound={bound} rows={}",
                    plan.query_name(),
                    table.rows().len()
                );
            }
            Err(SubmitError::Rejected { rejection, .. }) => match rejection {
                Rejection::FetchBound { bound, budget } => println!(
                    "REJECT {:8} fetch_bound={bound} exceeds budget={budget}",
                    plan.query_name()
                ),
                other => println!("REJECT {:8} {other}", plan.query_name()),
            },
            Err(other) => return Err(other.into()),
        }
    }
    let report = session.admission_stats();
    println!(
        "\nbudgeted session (budget={budget}): {}",
        describe(&report)
    );
    session.shutdown();
    Ok(())
}

fn describe(report: &bea::engine::AdmissionStats) -> String {
    format!(
        "submitted={} admitted={} rejected={} completed={} failed={} peak_admitted_bound={}",
        report.submitted,
        report.admitted,
        report.rejected,
        report.completed,
        report.failed,
        report.peak_admitted_bound
    )
}

//! Personalized graph search ("find all my friends in NYC who like cycling").
//!
//! The parameterized pattern is not boundedly evaluable — but instantiating the single
//! parameter `me` makes it covered (bounded query specialization, Section 5), after which
//! each search touches only the data around the designated person. The global variant of
//! the pattern (no personal anchor) stays unbounded, and the analysis says so.
//!
//! Run with `cargo run --release --example graph_search`.

use bea::core::cover;
use bea::core::plan::bounded_plan;
use bea::core::specialize::{instantiate, specialize_cq, SpecializeConfig};
use bea::engine::{eval_cq, execute_plan};
use bea::storage::IndexedDatabase;
use bea::workload::graph;
use bea_core::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = graph::catalog();
    let config = graph::GraphConfig {
        num_persons: 5_000,
        avg_degree: 30,
        max_degree: 80,
        num_cities: 5,
        num_tags: 10,
        max_likes: 5,
        ..graph::GraphConfig::default()
    };
    let schema = graph::access_schema(&catalog, &config);
    let db = graph::generate(&config)?;
    println!("social graph: {}", db.summary());

    // The parameterized pattern: friends of $me in NYC who like cycling.
    let pattern =
        graph::parameterized_pattern(&catalog, &graph::city_value(0), &graph::tag_value(0))?;
    println!("\npattern: {pattern}");
    println!(
        "covered as written? {}",
        cover::is_covered(&pattern, &schema)
    );

    let spec = specialize_cq(&pattern, &schema, 1, &SpecializeConfig::default())?
        .expect("instantiating `me` makes the pattern bounded");
    println!(
        "bounded specialization: instantiate {:?}",
        spec.parameter_names
    );

    // Run the personalized search for a few users, bounded vs naive.
    let indexed = IndexedDatabase::build(db, schema.clone())?;
    assert!(indexed.satisfies_schema());
    println!(
        "\n{:>8} {:>10} {:>15} {:>15}",
        "me", "friends", "bounded reads", "naive scans"
    );
    for me in [1i64, 17, 4999] {
        let query = instantiate(&pattern, &[("me", Value::Int(me))])?;
        let plan = bounded_plan(&query, &schema)?;
        let (answer, stats) = execute_plan(&plan, &indexed)?;
        let (naive_answer, naive_stats) = eval_cq(&query, indexed.database())?;
        assert!(answer.same_rows(&naive_answer));
        println!(
            "{:>8} {:>10} {:>15} {:>15}",
            me,
            answer.len(),
            stats.tuples_fetched,
            naive_stats.tuples_scanned
        );
    }

    // The global pattern (all pairs of friends who both like cycling) is not bounded.
    let global = graph::global_pattern(&catalog, &graph::tag_value(0))?;
    println!(
        "\nglobal pattern `{global}`\n  bounded under the degree constraints? {}",
        cover::is_bounded(&global, &schema)
    );
    Ok(())
}

//! The Example 1.1 scenario at scale: generate a synthetic UK-accidents database, answer
//! Q0 with a boundedly evaluable plan, and compare against the full-scan baseline as the
//! database grows — the number of tuples the bounded plan touches stays flat.
//!
//! Run with `cargo run --release --example traffic_accidents`.

use bea::core::plan::bounded_plan;
use bea::engine::{eval_cq, execute_plan};
use bea::storage::IndexedDatabase;
use bea::workload::accidents;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = accidents::catalog();
    let schema = accidents::access_schema(&catalog);

    println!(
        "{:>12} {:>10} {:>14} {:>12} {:>14} {:>12}",
        "|D| (tuples)", "answers", "bounded reads", "bounded ms", "naive reads", "naive ms"
    );

    for &total in &[20_000u64, 60_000, 180_000] {
        let config = accidents::AccidentsConfig::with_total_tuples(total, 7);
        let db = accidents::generate(&config)?;
        let size = db.size();

        // Q0 anchored on a day and district that exist in the generated data.
        let q0 = accidents::q0(
            &catalog,
            &accidents::district_value(0),
            &accidents::date_value(1),
        )?;
        let plan = bounded_plan(&q0, &schema)?;

        let naive_start = Instant::now();
        let (naive_answer, naive_stats) = eval_cq(&q0, &db)?;
        let naive_ms = naive_start.elapsed().as_secs_f64() * 1e3;

        let indexed = IndexedDatabase::build(db, schema.clone())?;
        assert!(indexed.satisfies_schema(), "generator must respect ψ1–ψ4");
        let bounded_start = Instant::now();
        let (bounded_answer, bounded_stats) = execute_plan(&plan, &indexed)?;
        let bounded_ms = bounded_start.elapsed().as_secs_f64() * 1e3;

        assert!(
            bounded_answer.same_rows(&naive_answer),
            "answers must agree"
        );
        println!(
            "{:>12} {:>10} {:>14} {:>12.2} {:>14} {:>12.2}",
            size,
            bounded_answer.len(),
            bounded_stats.tuples_fetched,
            bounded_ms,
            naive_stats.tuples_scanned,
            naive_ms
        );
    }

    println!(
        "\nThe bounded plan reads a number of tuples determined by ψ1–ψ4 and the query \
         alone; the baseline reads the whole database, so its column grows linearly."
    );
    Ok(())
}

//! Bounded query specialization in an e-commerce setting (Section 5).
//!
//! Parameterized queries ship with the application; the provider wants to know *which*
//! parameters must be instantiated before a query becomes boundedly evaluable, and
//! whether some queries can never be saved. This example runs the QSP analysis on three
//! such queries, then executes a specialization of one of them.
//!
//! Run with `cargo run --example ecommerce_specialization`.

use bea::core::envelope::{upper_envelope_cq, EnvelopeConfig};
use bea::core::plan::bounded_plan;
use bea::core::specialize::{instantiate, specialize_cq, SpecializeConfig};
use bea::engine::{eval_cq, execute_plan};
use bea::storage::IndexedDatabase;
use bea::workload::ecommerce;
use bea_core::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = ecommerce::catalog();
    let schema = ecommerce::access_schema(&catalog);
    let db = ecommerce::generate(&ecommerce::EcommerceConfig::default())?;
    println!("e-commerce database: {}", db.summary());
    println!("access schema:\n{}\n", schema.display_with(&catalog));

    let queries = [
        ecommerce::orders_of_customer(&catalog)?,
        ecommerce::products_in_category(&catalog)?,
        ecommerce::customers_by_brand(&catalog)?,
    ];
    for query in &queries {
        print!("{query}\n  -> ");
        match specialize_cq(query, &schema, 2, &SpecializeConfig::default())? {
            Some(spec) => println!(
                "boundedly specializable by instantiating {:?} (minimum tuple)",
                spec.parameter_names
            ),
            None => {
                println!("NOT boundedly specializable under this access schema");
                // Fall back to an upper envelope if one exists.
                match upper_envelope_cq(query, &schema, &EnvelopeConfig::default())? {
                    Some(env) => println!("     but it has an upper envelope: {}", env.query),
                    None => println!("     and it has no covered upper envelope either"),
                }
            }
        }
    }

    // Execute a concrete specialization of the first query: the orders of customer 42.
    let orders = &queries[0];
    let concrete = instantiate(orders, &[("uid", Value::Int(42))])?;
    let plan = bounded_plan(&concrete, &schema)?;
    let indexed = IndexedDatabase::build(db, schema.clone())?;
    let (answer, stats) = execute_plan(&plan, &indexed)?;
    let (naive_answer, naive_stats) = eval_cq(&concrete, indexed.database())?;
    assert!(answer.same_rows(&naive_answer));
    println!(
        "\nprices ordered by customer 42: {} distinct prices\n  bounded evaluation: {stats}\n  naive evaluation:   {naive_stats}",
        answer.len()
    );
    Ok(())
}

#!/usr/bin/env bash
# Service smoke: start the bead daemon against a generated accidents store, drive a
# mixed accept/reject batch through beactl, and assert a clean shutdown. The same
# flow runs in-tree as crates/bead/tests/service_smoke.rs; this script exercises the
# real installed binaries end to end (CI's service-smoke job, also runnable locally).
#
# Usage: scripts/service_smoke.sh [path-to-target-dir]   (default: target/release)

set -euo pipefail

TARGET="${1:-target/release}"
BEAD="$TARGET/bead"
BEACTL="$TARGET/beactl"
SOCKET="$(mktemp -u /tmp/bead-smoke-XXXXXX.sock)"
LOG="$(mktemp /tmp/bead-smoke-XXXXXX.log)"

[ -x "$BEAD" ] && [ -x "$BEACTL" ] || {
    echo "error: $BEAD / $BEACTL not built — run: cargo build --release -p bead" >&2
    exit 1
}

cleanup() {
    if [ -n "${BEAD_PID:-}" ] && kill -0 "$BEAD_PID" 2>/dev/null; then
        kill "$BEAD_PID" 2>/dev/null || true
    fi
    rm -f "$SOCKET" "$LOG"
}
trap cleanup EXIT

# Start the daemon: ~2000 tuples, 2 workers, a 10k-tuple aggregate fetch budget,
# and a 4096-row cross-query fetch cache.
"$BEAD" --socket "$SOCKET" --tuples 2000 --seed 48879 --threads 2 --fetch-budget 10000 \
    --cache-rows 4096 >"$LOG" 2>&1 &
BEAD_PID=$!

# Wait for the ready line (the daemon prints it once the socket accepts).
for _ in $(seq 1 100); do
    grep -q '^ready$' "$LOG" 2>/dev/null && break
    kill -0 "$BEAD_PID" 2>/dev/null || { echo "error: bead died during startup:" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.1
done
grep -q '^ready$' "$LOG" || { echo "error: bead never became ready:" >&2; cat "$LOG" >&2; exit 1; }

expect_exit() { # expect_exit <code> <description> <args...>
    local want="$1" what="$2"; shift 2
    local got=0
    "$BEACTL" --socket "$SOCKET" "$@" || got=$?
    if [ "$got" -ne "$want" ]; then
        echo "error: $what: expected exit $want, got $got" >&2
        exit 1
    fi
    echo "ok: $what (exit $got)"
}

expect_exit 0 "ping answers" ping

# Anchored on an accident id — fetch bound 1, admitted (exit 0).
COLD="$("$BEACTL" --socket "$SOCKET" query 'Q(d) :- Accident(x, d, t), x = 1.')" \
    || { echo "error: cheap query not admitted" >&2; exit 1; }
echo "ok: cheap query admitted (exit 0)"

# The same anchored query again — identical rows, served entirely from the
# session's cross-query fetch cache (zero store fetches, a recorded cache hit).
WARM="$("$BEACTL" --socket "$SOCKET" query 'Q(d) :- Accident(x, d, t), x = 1.')" \
    || { echo "error: cached repeat not admitted" >&2; exit 1; }
[ "$(echo "$COLD" | tail -n +2)" = "$(echo "$WARM" | tail -n +2)" ] \
    || { echo "error: cached repeat returned different rows" >&2; exit 1; }
echo "$WARM" | head -n 1 | grep -q 'tuples_fetched=0' \
    || { echo "error: cached repeat still fetched from the store: $WARM" >&2; exit 1; }
echo "$WARM" | head -n 1 | grep -q 'cache_hits=1' \
    || { echo "error: cached repeat recorded no cache hit: $WARM" >&2; exit 1; }
echo "ok: cached repeat served from the session cache (identical rows)"

# Q0's join chain prices far beyond the 10k budget — statically rejected (exit 3).
expect_exit 3 "expensive query rejected" query \
    'Q0(age) :- Accident(aid, "Queen'"'"'s Park", "day-0001"), Casualty(cid, aid, class, vid), Vehicle(vid, driver, age).'

# A query over an unknown relation is an ERR (exit 1) — and the daemon survives it.
expect_exit 1 "broken query errors" query 'Q(x) :- Nowhere(x).'

# The counters reflect exactly the batch above.
STATS="$("$BEACTL" --socket "$SOCKET" stats)"
echo "$STATS"
echo "$STATS" | grep -q 'completed=2' || { echo "error: stats missing completed=2" >&2; exit 1; }
echo "$STATS" | grep -q 'rejected=1' || { echo "error: stats missing rejected=1" >&2; exit 1; }
echo "$STATS" | grep -q 'budget=10000' || { echo "error: stats missing budget=10000" >&2; exit 1; }
echo "$STATS" | grep -q 'cache_hits=1' || { echo "error: stats missing cache_hits=1" >&2; exit 1; }
echo "$STATS" | grep -q 'cache_evictions=0' || { echo "error: stats missing cache_evictions=0" >&2; exit 1; }

expect_exit 0 "shutdown acknowledged" shutdown

# The daemon must exit cleanly (status 0) and remove its socket.
for _ in $(seq 1 100); do
    kill -0 "$BEAD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$BEAD_PID" 2>/dev/null; then
    echo "error: bead still running after SHUTDOWN" >&2
    exit 1
fi
wait "$BEAD_PID" && STATUS=0 || STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "error: bead exited with status $STATUS:" >&2; cat "$LOG" >&2; exit 1; }
[ ! -e "$SOCKET" ] || { echo "error: socket file left behind" >&2; exit 1; }
BEAD_PID=""

echo "service smoke OK: mixed accept/reject batch served, clean shutdown"

//! Offline stand-in for `criterion` (0.5 API surface).
//!
//! The build container cannot fetch crates.io, so this vendored crate implements the
//! subset of the criterion API the `bea-bench` benches use — `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — as a real measuring harness: each sample
//! times one batch of iterations with `std::time::Instant`, and the per-bench summary
//! (min / median / mean) is printed as plain text. No statistics beyond that, no HTML
//! reports, no command-line filtering. Swap the path dependency for crates.io
//! `criterion` when network access is available; the bench sources need no changes.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one measurement within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and the parameter it was measured at.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Build an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// True when the bench binary was invoked in criterion's `--test` mode (e.g.
/// `cargo bench -- --test`): every routine runs exactly once, un-timed, so the bench
/// doubles as a smoke test (CI uses this to execute bench-embedded assertions without
/// paying for sampling).
pub fn is_test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Timing loop handed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: a few warm-up runs, then `sample_size` timed samples. In
    /// `--test` mode ([`is_test_mode`]) the routine runs exactly once instead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        if is_test_mode() {
            std_black_box(routine());
            return;
        }
        for _ in 0..3.min(self.sample_size) {
            std_black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn summarize(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:<60} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({} samples)",
        sorted.len()
    );
}

/// A named collection of related measurements.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per bench (criterion's floor of 10 not enforced).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure `routine` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, R>(&mut self, id: I, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        summarize(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Measure `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        I: ?Sized,
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        summarize(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// End the group (prints a separator; the real crate runs its analysis here).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Measure a standalone function outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        routine(&mut bencher);
        summarize(id, &bencher.samples);
        self
    }
}

/// Define a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `serde` (see `vendor/serde_derive` for the rationale).
//!
//! Exposes the two trait names and their derives with the same import paths as the
//! real crate (`use serde::{Deserialize, Serialize}` + `#[derive(Serialize,
//! Deserialize)]`), so the workspace compiles unchanged whether this stub or the real
//! `serde` backs the dependency.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

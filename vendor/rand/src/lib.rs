//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build container has no crates.io access, so this vendored crate implements the
//! slice of `rand` the workload generators actually use — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool` — on top of a real,
//! deterministic xoshiro256++ generator. Determinism per seed is the property the
//! workloads and property tests rely on; statistical quality beyond that is not a goal.
//! Note the stream differs from the real `StdRng` (ChaCha12), so generated datasets are
//! reproducible under this stub but not bit-identical to a crates.io build.

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Named generator types (`rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 — the recommended seeder for xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range from which `Rng::gen_range` can sample a `T`.
pub trait SampleRange<T> {
    /// Sample one value uniformly; panics on an empty range like the real crate.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Uniform in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Map 64 random bits to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::gen` can produce from the standard distribution.
pub trait Standard: Sized {
    /// Sample one value from the type's standard distribution.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling API (`rand::Rng`), blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Sample from the type's standard distribution (`f64` in `[0, 1)`, etc.).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(17i64..=90);
            assert!((17..=90).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

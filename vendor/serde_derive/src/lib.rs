//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io, so the real
//! `serde` cannot be fetched. Nothing in the workspace serializes data yet — the
//! derives exist so that plan/query/stats types are *ready* to serialize once a real
//! backend needs it — so the derives here expand to marker-trait impls only. Swap this
//! path dependency for the crates.io `serde` when the build environment has network
//! access; no source changes are required.

use proc_macro::{TokenStream, TokenTree};

/// Extract `(name, has_generics)` of the struct/enum a derive was applied to.
fn derived_type(input: TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, impl_header: &str) -> TokenStream {
    match derived_type(input) {
        // Generic types would need bounds we cannot compute without `syn`; no workspace
        // type currently is, so an empty expansion is safe there.
        Some((name, false)) => format!("{impl_header} for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl ::serde::Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl<'de> ::serde::Deserialize<'de>")
}
